(* Larson (server-allocator benchmark; paper §6.2, Fig. 5c): simulates
   "bleeding" — objects allocated by one thread are freed by another.
   All threads share one big slot array and continually replace random
   slots with freshly allocated objects of random size; a slot is claimed
   with an atomic exchange, so whoever grabs it frees a block that some
   other thread probably allocated.  Runs for a fixed duration; the metric
   is throughput (M ops/s, counting each malloc and each free as an op).

   The paper uses sizes 64-400 B ("small"), and a 64-2048 B variant that
   exposes Makalu's medium-size collapse (§6.2). *)

type params = {
  duration : float;
  slots_per_thread : int;
  min_size : int;
  max_size : int;
}

let default =
  { duration = 1.0; slots_per_thread = 1000; min_size = 64; max_size = 400 }

let medium = { default with max_size = 2048 }

(* Returns throughput in M ops/s. *)
let run alloc ~threads p =
  let nslots = threads * p.slots_per_thread in
  let slots = Array.init nslots (fun _ -> Atomic.make 0) in
  let total_ops = Atomic.make 0 in
  let range = p.max_size - p.min_size + 1 in
  let elapsed =
    Harness.time_parallel ~threads (fun tid ->
        let rng = Harness.Rng.make ((tid * 104729) + 7) in
        let ops = ref 0 in
        let deadline = Unix.gettimeofday () +. p.duration in
        while Unix.gettimeofday () < deadline do
          for _ = 1 to 512 do
            let i = Harness.Rng.below rng nslots in
            let old = Atomic.exchange slots.(i) 0 in
            if old <> 0 then begin
              Alloc_iface.free alloc old;
              incr ops
            end;
            let size = p.min_size + Harness.Rng.below rng range in
            let va = Alloc_iface.malloc alloc size in
            if va = 0 then failwith "larson: heap exhausted";
            Alloc_iface.store alloc va size;
            incr ops;
            let prev = Atomic.exchange slots.(i) va in
            if prev <> 0 then begin
              (* lost a race for the slot: free the displaced block *)
              Alloc_iface.free alloc prev;
              incr ops
            end
          done
        done;
        ignore (Atomic.fetch_and_add total_ops !ops);
        Alloc_iface.thread_exit alloc)
  in
  float_of_int (Atomic.get total_ops) /. elapsed /. 1e6
