(** Prod-con (paper §6.2, Fig. 5d; re-implementation of Makalu's
    producer-consumer test): t/2 thread pairs, each sharing a
    Michael&Scott-style queue.  Producers allocate 64 B objects and
    enqueue pointers; consumers dequeue and free — every object and every
    queue node crosses threads through the allocator under test. *)

type params = { objects_total : int; object_size : int }

val default : params

val run : Alloc_iface.instance -> threads:int -> params -> float
(** Elapsed seconds to move all objects (lower is better).  [threads] is
    rounded down to whole pairs (min 1 pair). *)
