(* Prod-con (paper §6.2, Fig. 5d; a re-implementation of Makalu's
   producer-consumer test): t/2 thread pairs, each communicating through a
   Michael&Scott-style queue.  The producer allocates 64 B objects and
   enqueues pointers to them; its consumer dequeues and frees them.  Queue
   nodes themselves also flow producer -> consumer through the allocator
   under test.  Returns elapsed seconds. *)

type params = { objects_total : int; object_size : int }

let default = { objects_total = 100_000; object_size = 64 }
let poison = max_int

let run alloc ~threads p =
  let pairs = max 1 (threads / 2) in
  let per_pair = p.objects_total / pairs in
  let queues = Array.init pairs (fun _ -> Dstruct.Msqueue.create alloc) in
  Harness.time_parallel ~threads:(pairs * 2) (fun tid ->
      let q = queues.(tid / 2) in
      if tid land 1 = 0 then begin
        (* producer *)
        for i = 1 to per_pair do
          let obj = Alloc_iface.malloc alloc p.object_size in
          if obj = 0 then failwith "prodcon: heap exhausted";
          Alloc_iface.store alloc obj i;
          while not (Dstruct.Msqueue.enqueue q obj) do
            Domain.cpu_relax ()
          done
        done;
        while not (Dstruct.Msqueue.enqueue q poison) do
          Domain.cpu_relax ()
        done;
        Alloc_iface.thread_exit alloc
      end
      else begin
        (* consumer *)
        let stop = ref false in
        while not !stop do
          match Dstruct.Msqueue.dequeue q with
          | Some v when v = poison -> stop := true
          | Some obj -> Alloc_iface.free alloc obj
          | None -> Domain.cpu_relax ()
        done;
        Alloc_iface.thread_exit alloc
      end)
