(** Shbench (MicroQuill SmartHeap stress test; paper §6.2, Fig. 5b):
    threads continually replace random members of a window of live
    objects with fresh allocations of skewed-small random size
    (64–400 B in the paper), mixing object lifetimes. *)

type params = {
  iterations : int;
  window : int;  (** live objects kept per thread *)
  min_size : int;
  max_size : int;
}

val default : params

val skewed_size : Harness.Rng.t -> min_size:int -> max_size:int -> int
(** The benchmark's size distribution (small sizes more frequent). *)

val run : Alloc_iface.instance -> threads:int -> params -> float
(** Elapsed seconds (lower is better). *)
