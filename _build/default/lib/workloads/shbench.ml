(* Shbench (MicroQuill's SmartHeap stress test; paper §6.2, Fig. 5b):
   threads allocate and free many objects of sizes 64-400 B, smaller
   sizes being more frequent.  Each thread keeps a window of live objects
   and replaces a random victim every step, which mixes lifetimes the way
   the original benchmark does. *)

type params = {
  iterations : int;
  window : int;
  min_size : int;
  max_size : int;
}

let default = { iterations = 60_000; window = 512; min_size = 64; max_size = 400 }

(* Size distribution skewed towards small objects: take the min of two
   uniform draws. *)
let skewed_size rng ~min_size ~max_size =
  let range = max_size - min_size + 1 in
  let a = Harness.Rng.below rng range and b = Harness.Rng.below rng range in
  min_size + min a b

let run alloc ~threads { iterations; window; min_size; max_size } =
  Harness.time_parallel ~threads (fun tid ->
      let rng = Harness.Rng.make ((tid * 7919) + 13) in
      let slots = Array.make window 0 in
      for _ = 1 to iterations do
        let i = Harness.Rng.below rng window in
        if slots.(i) <> 0 then Alloc_iface.free alloc slots.(i);
        let size = skewed_size rng ~min_size ~max_size in
        let va = Alloc_iface.malloc alloc size in
        if va = 0 then failwith "shbench: heap exhausted";
        Alloc_iface.store alloc va size;
        slots.(i) <- va
      done;
      Array.iter (fun va -> if va <> 0 then Alloc_iface.free alloc va) slots;
      Alloc_iface.thread_exit alloc)
