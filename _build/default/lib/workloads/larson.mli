(** Larson (server benchmark; paper §6.2, Fig. 5c): sustained random
    replacement of objects in a shared slot array, so blocks are routinely
    freed by a different thread than allocated them ("bleeding").  Runs
    for a fixed duration.

    The in-text §6.2 variant with sizes 64–2048 B ({!medium}) exposes
    Makalu's medium-size collapse. *)

type params = {
  duration : float;  (** seconds of measured work per run *)
  slots_per_thread : int;
  min_size : int;
  max_size : int;
}

val default : params
(** Sizes 64–400 B, as in Fig. 5c. *)

val medium : params
(** Sizes 64–2048 B (the Makalu-collapse experiment). *)

val run : Alloc_iface.instance -> threads:int -> params -> float
(** Throughput in million operations per second (higher is better); each
    malloc and each free counts as one operation. *)
