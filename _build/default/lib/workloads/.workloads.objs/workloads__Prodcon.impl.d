lib/workloads/prodcon.ml: Alloc_iface Array Domain Dstruct Harness
