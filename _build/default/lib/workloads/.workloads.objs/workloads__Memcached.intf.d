lib/workloads/memcached.mli: Alloc_iface Ycsb
