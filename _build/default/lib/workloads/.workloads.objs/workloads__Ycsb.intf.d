lib/workloads/ycsb.mli: Harness
