lib/workloads/prodcon.mli: Alloc_iface
