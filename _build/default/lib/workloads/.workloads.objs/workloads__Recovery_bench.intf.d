lib/workloads/recovery_bench.mli:
