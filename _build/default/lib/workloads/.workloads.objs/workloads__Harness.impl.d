lib/workloads/harness.ml: Atomic Domain Format List Printf Unix
