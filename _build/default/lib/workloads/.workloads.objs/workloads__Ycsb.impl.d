lib/workloads/ycsb.ml: Float Harness
