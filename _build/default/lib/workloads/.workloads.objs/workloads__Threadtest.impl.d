lib/workloads/threadtest.ml: Alloc_iface Array Harness
