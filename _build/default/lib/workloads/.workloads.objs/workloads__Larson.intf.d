lib/workloads/larson.mli: Alloc_iface
