lib/workloads/vacation.ml: Alloc_iface Array Dstruct Harness Mutex
