lib/workloads/recovery_bench.ml: Dstruct Harness Ralloc
