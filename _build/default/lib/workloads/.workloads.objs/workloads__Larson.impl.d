lib/workloads/larson.ml: Alloc_iface Array Atomic Harness Unix
