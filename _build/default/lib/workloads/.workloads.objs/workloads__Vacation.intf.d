lib/workloads/vacation.mli: Alloc_iface
