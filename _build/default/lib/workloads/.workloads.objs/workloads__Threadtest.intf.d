lib/workloads/threadtest.mli: Alloc_iface
