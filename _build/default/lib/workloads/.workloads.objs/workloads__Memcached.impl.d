lib/workloads/memcached.ml: Alloc_iface Char Dstruct Harness String Ycsb
