lib/workloads/shbench.ml: Alloc_iface Array Harness
