lib/workloads/shbench.mli: Alloc_iface Harness
