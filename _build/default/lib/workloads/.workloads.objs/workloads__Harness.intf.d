lib/workloads/harness.mli: Format
