(* Threadtest (Hoard's benchmark; paper §6.2, Fig. 5a): each thread
   repeatedly allocates a batch of 64 B objects and then frees them all,
   with no sharing between threads.  The paper runs 10^4 iterations of
   10^5 objects; we scale both knobs down and keep their product a
   parameter. *)

type params = { iterations : int; objects_per_iter : int; object_size : int }

let default = { iterations = 50; objects_per_iter = 2000; object_size = 64 }

(* Returns elapsed seconds for the whole run. *)
let run alloc ~threads { iterations; objects_per_iter; object_size } =
  Harness.time_parallel ~threads (fun tid ->
      let slots = Array.make objects_per_iter 0 in
      for _ = 1 to iterations do
        for i = 0 to objects_per_iter - 1 do
          let va = Alloc_iface.malloc alloc object_size in
          if va = 0 then failwith "threadtest: heap exhausted";
          (* touch the object, as the original benchmark does *)
          Alloc_iface.store alloc va tid;
          slots.(i) <- va
        done;
        for i = 0 to objects_per_iter - 1 do
          Alloc_iface.free alloc slots.(i)
        done
      done;
      Alloc_iface.thread_exit alloc)

let total_ops ~threads { iterations; objects_per_iter; _ } =
  2 * threads * iterations * objects_per_iter
