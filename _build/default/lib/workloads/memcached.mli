(** Memcached-as-a-library driven by YCSB (paper §6.3, Fig. 5f): a
    bucket-locked hash table called directly (the paper likewise converts
    memcached into a library to bypass sockets).  Updates replace the
    value block, so each is a free+malloc pair on the allocator under
    test. *)

type params = {
  records : int;
  operations : int;
  value_size : int;
  workload : Ycsb.workload;
}

val default : params

val key : int -> string
(** The YCSB-style key for record [i]. *)

val run : Alloc_iface.instance -> threads:int -> params -> float
(** Throughput in K ops/s over the run phase (higher is better); the load
    phase is not timed. *)
