(* Multi-domain benchmark harness: spawn [threads] domains, release them
   through a sense barrier, and time the parallel section. *)

type barrier = { arrived : int Atomic.t; release : bool Atomic.t; parties : int }

let make_barrier parties =
  { arrived = Atomic.make 0; release = Atomic.make false; parties }

let await b =
  if Atomic.fetch_and_add b.arrived 1 = b.parties - 1 then
    Atomic.set b.release true
  else while not (Atomic.get b.release) do Domain.cpu_relax () done

(* Run [body tid] on [threads] domains; returns elapsed wall-clock seconds
   of the parallel section (start barrier to last join). *)
let time_parallel ~threads body =
  let b = make_barrier (threads + 1) in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            await b;
            body tid))
  in
  let t0 = Unix.gettimeofday () in
  await b;
  List.iter Domain.join domains;
  Unix.gettimeofday () -. t0

(* A deterministic per-thread xorshift PRNG (Random.State is heavier and
   we want reproducible, allocation-free randomness in hot loops). *)
module Rng = struct
  type t = { mutable s : int }

  let make seed = { s = (seed * 2654435761) lor 1 }

  let next t =
    let x = t.s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    t.s <- x;
    x land max_int

  let below t n = next t mod n
end

(* One row of a figure: one allocator at one thread count. *)
type row = {
  figure : string;
  allocator : string;
  threads : int;
  metric : string; (* "seconds" | "Mops/s" | "Kops/s" *)
  value : float;
  flushes : int;
  fences : int;
}

let pp_row ppf r =
  Format.fprintf ppf "%-12s %-10s %2d  %12.4f %-8s flushes=%-9d fences=%d"
    r.figure r.allocator r.threads r.value r.metric r.flushes r.fences

let print_header figure title =
  Printf.printf "\n== %s: %s ==\n%-12s %-10s %2s  %12s %-8s\n" figure title
    "figure" "allocator" "t" "value" "metric"

let print_row r =
  Format.printf "%a@." pp_row r

let csv_header = "figure,allocator,threads,value,metric,flushes,fences"

let row_to_csv r =
  Printf.sprintf "%s,%s,%d,%f,%s,%d,%d" r.figure r.allocator r.threads r.value
    r.metric r.flushes r.fences
