(** Position-independent persistent pointers (paper §4.6).

    A persistent heap may be mapped at a different virtual address in every
    process and every run, so pointers stored {e inside} persistent memory
    must not be absolute.  Two representations are provided, both 62-bit
    values that fit in one simulated-NVM word:

    - {b off-holders}: the stored value encodes the signed distance from the
      pointer's own location to its target ([target - holder]), following
      Chen et al.  The holder's address is always at hand when loading or
      storing through the pointer, so decoding is one addition.
    - {b based pointers}: a region id plus an offset from that region's
      base.  Only Ralloc's own cross-region metadata (e.g. persistent roots
      in the metadata region that point into the superblock region) needs
      these; application code never does.

    Because the superblock region is bounded (1 TB in the paper), the
    offset needs at most 41 signed bits; the spare bits carry an
    {e uncommon tag pattern} that is masked away on use.  The tag makes it
    unlikely (2{^-16}) that an arbitrary integer stored by the application
    is misinterpreted as a pointer by the conservative post-crash GC. *)

(** {1 Off-holders} *)

val null : int
(** The null pointer representation (0). *)

val is_null : int -> bool

val encode : holder:int -> target:int -> int
(** [encode ~holder ~target] is the word to store at virtual address
    [holder] to designate virtual address [target].  [target = 0] encodes
    {!null}.  @raise Invalid_argument if the distance exceeds ±1 TB. *)

val decode : holder:int -> int -> int
(** [decode ~holder w] is the target virtual address denoted by the word
    [w] read from address [holder]; 0 if [w] is {!null}.
    @raise Invalid_argument if [w] does not carry the off-holder tag. *)

val looks_like_pptr : int -> bool
(** True iff [w] carries the off-holder tag pattern — the conservative
    GC's validity pre-filter.  Null does {e not} look like a pointer. *)

(** {1 Based (region-indexed) pointers} *)

type region_id = Meta | Desc | Sb

val encode_based : region_id -> offset:int -> int
(** A pointer to byte [offset] within the given region, independent of
    where the region is mapped.  [offset] must fit in 41 bits. *)

val decode_based : int -> (region_id * int) option
(** [decode_based w] is [Some (region, offset)] if [w] carries the based
    tag, [None] otherwise (including null). *)

val based_null : int
(** A null based pointer (equal to {!null}). *)

(** {1 RIV cross-heap pointers}

    The paper's near-term plan (§4.6): a {e Region ID in Value} variant of
    [pptr] that can designate a block in a {e different} persistent heap
    while staying 64 bits wide.  The word carries a 12-bit persistent heap
    id plus an offset into that heap's superblock region; a transient
    registry ({!Ralloc.read_riv}) resolves ids to currently mapped heaps.
    The three pointer kinds (off-holder, based, RIV) carry mutually
    exclusive tags, so conservative GC never confuses them — in
    particular, cross-heap edges do not keep local blocks alive: a block
    referenced from another heap must also be rooted in its own. *)

val max_heap_id : int
(** 4095. *)

val encode_riv : heap_id:int -> offset:int -> int
val decode_riv : int -> (int * int) option
(** [(heap_id, offset)] if the word carries the RIV tag. *)

val looks_like_riv : int -> bool

(** {1 Spare-bit utilities}

    Bits 57..61 of a pointer word are ignored by {!decode} and
    {!looks_like_pptr}, so CAS-updated pointer words can carry a small
    anti-ABA counter (the paper gives its metadata list heads a counter
    "as a benefit of the persistent pointers") or the flag/tag mark bits
    of lock-free tree algorithms. *)

val counter_bits : int
(** Number of spare bits (5). *)

val with_counter : int -> int -> int
(** [with_counter w c] is [w] with the spare bits set to [c mod 32]. *)

val counter_of : int -> int

val strip_counter : int -> int
(** The pointer word with all spare bits cleared (what {!decode} sees). *)

val encode_counted : holder:int -> target:int -> int -> int
(** [encode_counted ~holder ~target c]: off-holder plus counter.  A null
    target still carries the counter, so a CAS on an emptied list head
    remains ABA-protected. *)

val decode_counted : holder:int -> int -> int
(** Decode ignoring the counter; 0 if the pointer part is null. *)
