(* Word layout (62 bits used):
     bits 0..40   signed 41-bit offset (off-holders: target - holder;
                  based: byte offset within the region)
     bits 41..56  tag pattern (distinct for off-holders and based pointers)
     bits 57..58  region id for based pointers
   Null is the all-zero word. *)

let offset_bits = 41
let offset_mask = (1 lsl offset_bits) - 1
let tag_shift = offset_bits
let tag_mask = 0xFFFF
let offholder_tag = 0xA5C3
let based_tag = 0x5A3C
let region_shift = 57
let null = 0
let is_null w = w = 0

let sign_extend_offset d =
  (* take the low 41 bits as a two's-complement value; note lsl/asr are
     right-associative, hence the parentheses *)
  (d lsl (Sys.int_size - offset_bits)) asr (Sys.int_size - offset_bits)

let tag_of w = (w lsr tag_shift) land tag_mask

let encode ~holder ~target =
  if target = 0 then null
  else begin
    let delta = target - holder in
    if delta >= 1 lsl (offset_bits - 1) || delta < -(1 lsl (offset_bits - 1))
    then invalid_arg "Pptr.encode: offset exceeds 1 TB";
    (offholder_tag lsl tag_shift) lor (delta land offset_mask)
  end

let decode ~holder w =
  if w = 0 then 0
  else if tag_of w <> offholder_tag then
    invalid_arg "Pptr.decode: word does not carry the off-holder tag"
  else holder + sign_extend_offset (w land offset_mask)

let looks_like_pptr w = w <> 0 && tag_of w = offholder_tag

type region_id = Meta | Desc | Sb

let int_of_region = function Meta -> 0 | Desc -> 1 | Sb -> 2
let region_of_int = function 0 -> Meta | 1 -> Desc | _ -> Sb
let based_null = null

let encode_based region ~offset =
  if offset < 0 || offset > offset_mask then
    invalid_arg "Pptr.encode_based: offset out of range";
  (int_of_region region lsl region_shift)
  lor (based_tag lsl tag_shift)
  lor offset

let decode_based w =
  if w <> 0 && tag_of w = based_tag then
    Some (region_of_int ((w lsr region_shift) land 3), w land offset_mask)
  else None

(* RIV (Region ID in Value, Chen et al.) cross-heap pointers: bits 0..40
   offset, 41..52 a 12-bit heap id, 53..56 the riv tag nibble.  The nibble
   differs from the top nibble of both 16-bit tags above, so the three
   pointer kinds are mutually distinguishable. *)
let riv_tag = 0xB
let riv_tag_shift = 53
let riv_id_shift = 41
let riv_id_mask = 0xFFF
let max_heap_id = riv_id_mask

let encode_riv ~heap_id ~offset =
  if heap_id < 0 || heap_id > riv_id_mask then
    invalid_arg "Pptr.encode_riv: heap id out of range";
  if offset < 0 || offset > offset_mask then
    invalid_arg "Pptr.encode_riv: offset out of range";
  (riv_tag lsl riv_tag_shift) lor (heap_id lsl riv_id_shift) lor offset

let looks_like_riv w =
  w <> 0 && (w lsr riv_tag_shift) land 0xF = riv_tag

let decode_riv w =
  if looks_like_riv w then
    Some ((w lsr riv_id_shift) land riv_id_mask, w land offset_mask)
  else None

let counter_bits = 5
let counter_shift = 57
let counter_mask = ((1 lsl counter_bits) - 1) lsl counter_shift
let with_counter w c = w land lnot counter_mask lor ((c land 31) lsl counter_shift)
let counter_of w = (w land counter_mask) lsr counter_shift
let strip_counter w = w land lnot counter_mask
let encode_counted ~holder ~target c = with_counter (encode ~holder ~target) c

let decode_counted ~holder w =
  let p = strip_counter w in
  if p = 0 then 0 else decode ~holder p
