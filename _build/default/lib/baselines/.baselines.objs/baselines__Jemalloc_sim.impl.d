lib/baselines/jemalloc_sim.ml: Array Atomic Domain List Mutex Pmem Ralloc
