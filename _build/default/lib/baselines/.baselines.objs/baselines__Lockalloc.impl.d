lib/baselines/lockalloc.ml: Array Domain Mutex Pmem Ralloc
