lib/baselines/jemalloc_sim.mli: Pmem
