lib/baselines/lockalloc.mli: Pmem
