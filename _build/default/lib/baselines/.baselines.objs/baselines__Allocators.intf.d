lib/baselines/allocators.mli: Alloc_iface Jemalloc_sim Lockalloc Ralloc
