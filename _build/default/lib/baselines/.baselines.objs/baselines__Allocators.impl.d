lib/baselines/allocators.ml: Alloc_iface Jemalloc_sim Lockalloc Ralloc
