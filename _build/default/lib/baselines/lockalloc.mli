(** A configurable lock-based persistent allocator, used to model the cost
    structure of the paper's lock-based comparators (Makalu, PMDK's
    libpmemobj, Mnemosyne's built-in allocator).

    Unlike Ralloc, these systems persist their metadata eagerly: every
    allocation and deallocation writes a log record and updates persistent
    free-list heads, with the corresponding flushes and fences, under a
    lock.  The [config] knobs reproduce each system's published behaviour:
    how many words are logged, how many flush+fence pairs are issued, the
    locking granularity, and (for Makalu) a thread-local free-list cache
    that returns only half its contents when over-full. *)

type config = {
  cfg_name : string;
  global_lock : bool;  (** one lock for everything (PMDK) vs per-class *)
  log_words : int;  (** words written to the redo/undo log per operation *)
  log_flushes : int;  (** flush+fence pairs devoted to the log per op *)
  metadata_flushes : int;  (** flush+fence pairs for the free-list update *)
  tcache_capacity : int;  (** thread-local cache size; 0 disables it *)
  half_return : bool;  (** over-full cache returns half (Makalu) vs all *)
  persist_pointer_on_malloc : bool;
      (** model PMDK's [malloc-to]: durably store the destination pointer *)
  medium_threshold : int;
      (** block sizes above this take the slow "medium" path *)
  medium_extra_flushes : int;
      (** extra flush+fence pairs on the medium path (Makalu's collapse on
          64-2048 B Larson, paper §6.2); 0 disables *)
}

type t

val create : config -> size:int -> t
val name : t -> string
val malloc : t -> int -> int
val free : t -> int -> unit
val load : t -> int -> int
val store : t -> int -> int -> unit
val cas : t -> int -> expected:int -> desired:int -> bool
val thread_exit : t -> unit
val stats : t -> Pmem.Stats.snapshot
