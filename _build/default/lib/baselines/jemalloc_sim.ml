(* A transient high-performance allocator in the spirit of JEMalloc:
   per-domain arenas (size-classed free lists kept entirely in transient
   OCaml memory), batched refills from a central pool, and no persistence
   work whatsoever.  It serves blocks from a simulated-NVM region only so
   that workloads can exercise the memory uniformly across allocators. *)

module Size_class = Ralloc.Size_class

type cache = { lists : int list array; counts : int array }

type t = {
  mem : Pmem.t;
  base : int;
  capacity : int;
  wilderness : int Atomic.t; (* transient watermark: no flushes needed *)
  central_lock : Mutex.t;
  central : int list array; (* shared overflow lists, index 0 = large *)
  dls : cache Domain.DLS.key;
}

let refill_batch = 32
let cache_limit = 256
let name = "jemalloc"

let create ~size =
  let mem = Pmem.create ~name ~size_bytes:size () in
  {
    mem;
    base = 0x3_0000_0000;
    capacity = size;
    wilderness = Atomic.make 8 (* byte 0 stays unused so 0 can mean null *);
    central_lock = Mutex.create ();
    central = Array.make (Size_class.count + 1) [];
    dls =
      Domain.DLS.new_key (fun () ->
          {
            lists = Array.make (Size_class.count + 1) [];
            counts = Array.make (Size_class.count + 1) 0;
          });
  }

let word t va = (va - t.base) lsr 3
let load t va = Pmem.load t.mem (word t va)
let store t va v = Pmem.store t.mem (word t va) v
let cas t va ~expected ~desired = Pmem.cas t.mem (word t va) ~expected ~desired

(* Blocks carry a one-word header with the payload size, written once when
   the block is carved. *)
let carve t payload_bytes n =
  let slot = 8 + payload_bytes in
  let rec claim () =
    let off = Atomic.get t.wilderness in
    let take = min n (max 1 ((t.capacity - off) / slot)) in
    if off + slot > t.capacity then []
    else if Atomic.compare_and_set t.wilderness off (off + (take * slot)) then begin
      List.init take (fun i ->
          let o = off + (i * slot) in
          Pmem.store t.mem (o lsr 3) payload_bytes;
          t.base + o + 8)
    end
    else claim ()
  in
  claim ()

let refill t c cache =
  (* try the central pool first, then the wilderness *)
  Mutex.lock t.central_lock;
  let rec take n acc =
    if n = 0 then acc
    else
      match t.central.(c) with
      | va :: rest ->
        t.central.(c) <- rest;
        take (n - 1) (va :: acc)
      | [] -> acc
  in
  let got = take refill_batch [] in
  Mutex.unlock t.central_lock;
  let got =
    if got = [] then carve t (Size_class.block_size c) refill_batch else got
  in
  cache.lists.(c) <- got;
  cache.counts.(c) <- List.length got;
  cache.counts.(c) > 0

let malloc_small t c =
  let cache = Domain.DLS.get t.dls in
  let rec pop () =
    match cache.lists.(c) with
    | va :: rest ->
      cache.lists.(c) <- rest;
      cache.counts.(c) <- cache.counts.(c) - 1;
      va
    | [] -> if refill t c cache then pop () else 0
  in
  pop ()

let malloc_large t size =
  (* large blocks: central list first fit, else carve *)
  Mutex.lock t.central_lock;
  let rec scan acc = function
    | [] -> (0, List.rev acc)
    | va :: rest ->
      if load t (va - 8) >= size then (va, List.rev_append acc rest)
      else scan (va :: acc) rest
  in
  let found, rest = scan [] t.central.(0) in
  if found <> 0 then t.central.(0) <- rest;
  Mutex.unlock t.central_lock;
  if found <> 0 then found
  else match carve t size 1 with [ va ] -> va | _ -> 0

let malloc t size =
  if size < 0 then invalid_arg "Jemalloc_sim.malloc";
  if size > Size_class.max_small_size then malloc_large t ((size + 7) / 8 * 8)
  else malloc_small t (Size_class.of_size size)

let spill t c cache n =
  Mutex.lock t.central_lock;
  for _ = 1 to n do
    match cache.lists.(c) with
    | va :: rest ->
      cache.lists.(c) <- rest;
      cache.counts.(c) <- cache.counts.(c) - 1;
      t.central.(c) <- va :: t.central.(c)
    | [] -> ()
  done;
  Mutex.unlock t.central_lock

let free t va =
  if va <> 0 then begin
    let size = load t (va - 8) in
    if size > Size_class.max_small_size then begin
      Mutex.lock t.central_lock;
      t.central.(0) <- va :: t.central.(0);
      Mutex.unlock t.central_lock
    end
    else begin
      let c = Size_class.of_size size in
      let cache = Domain.DLS.get t.dls in
      cache.lists.(c) <- va :: cache.lists.(c);
      cache.counts.(c) <- cache.counts.(c) + 1;
      if cache.counts.(c) > cache_limit then spill t c cache (cache_limit / 2)
    end
  end

let thread_exit t =
  let cache = Domain.DLS.get t.dls in
  for c = 1 to Size_class.count do
    if cache.counts.(c) > 0 then spill t c cache cache.counts.(c)
  done

let stats t = Pmem.Stats.read t.mem
let persistent = false
