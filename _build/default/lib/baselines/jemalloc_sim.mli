(** A transient high-performance allocator in the spirit of JEMalloc
    (Evans, BSDCan'06), the paper's fast non-persistent comparator:
    per-domain size-classed arenas kept entirely in transient memory,
    batched refills from a central pool, no flushes or fences ever.  It
    serves blocks from a simulated-NVM region only so workloads can use
    the memory uniformly across allocators. *)

type t

val name : string
val persistent : bool
val create : size:int -> t
val malloc : t -> int -> int
val free : t -> int -> unit
val load : t -> int -> int
val store : t -> int -> int -> unit
val cas : t -> int -> expected:int -> desired:int -> bool
val thread_exit : t -> unit
val stats : t -> Pmem.Stats.snapshot
