(** Epoch-based safe memory reclamation for lock-free persistent
    structures.

    The paper layers SMR {e above} the allocator: "safe memory
    reclamation, if any, is layered on top of free: the Ralloc operation
    is invoked not at retirement, but at eventual reclamation" (§5), and
    relies on recovery GC to make the limbo lists crash-oblivious — they
    live purely in transient memory, are never flushed, and any block
    stranded in one by a crash is collected by the next {!Ralloc.recover}
    (§3).  This module is that layer.

    Protocol: a domain wraps every operation that may dereference shared
    nodes in {!protect} (or a {!pin}/{!unpin} pair), and passes freed-but-
    possibly-still-visible blocks to {!retire} instead of
    {!Ralloc.free}.  A retired block is actually freed only after every
    domain has passed through at least one epoch boundary, so no protected
    reader can still hold a reference. *)

type t
(** A reclamation domain bound to one heap.  Supports up to 64
    participating OCaml domains. *)

val create : Ralloc.t -> t

val pin : t -> unit
(** Enter a protected (read-side) section.  Nestable. *)

val unpin : t -> unit

val protect : t -> (unit -> 'a) -> 'a
(** [protect t f] = pin; f (); unpin — exception safe. *)

val retire : t -> int -> unit
(** Defer [Ralloc.free] of the block until it is provably unreachable by
    protected sections.  Never blocks; reclamation is amortized into
    later calls. *)

val flush : t -> unit
(** Drive epochs forward and free everything currently reclaimable from
    the calling domain's limbo lists.  Call from a quiescent point (e.g.
    before a domain exits); anything still deferred simply waits for the
    next crash's GC, exactly as the paper intends. *)

val pending : t -> int
(** Blocks in the calling domain's limbo lists (diagnostics). *)

val epoch : t -> int
(** Current global epoch (diagnostics, tests). *)
