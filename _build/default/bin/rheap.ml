(* rheap: inspection and fsck for Ralloc heap files.

     rheap info  <path>    layout, utilization and per-class statistics
     rheap fsck  <path>    trace from the persistent roots (conservative),
                           rebuild metadata, report leaks reclaimed
     rheap roots <path>    list the registered persistent roots

   [fsck] is exactly the allocator's recovery procedure run by hand: on a
   heap left dirty by a crash it performs the offline GC; on a clean heap
   it verifies that a GC rediscovers the same state.  Without the
   application's filter functions tracing is conservative, which can only
   over-approximate liveness (paper §4.5.1). *)

let open_heap path =
  if not (Sys.file_exists (path ^ ".meta")) then begin
    Printf.eprintf "rheap: no heap at %s (expected %s.meta/.desc/.sb)\n" path
      path;
    exit 1
  end;
  Ralloc.init ~path ~size:1 ()

let cmd_info path =
  let heap, status = open_heap path in
  Printf.printf "heap:      %s\n" path;
  Printf.printf "status:    %s\n"
    (match status with
    | Ralloc.Fresh -> "fresh (just created?)"
    | Ralloc.Clean_restart -> "clean"
    | Ralloc.Dirty_restart -> "DIRTY - crashed; run `rheap fsck`");
  Printf.printf "capacity:  %d bytes (%d superblocks)\n"
    (Ralloc.capacity_bytes heap)
    (Ralloc.capacity_bytes heap / 65536);
  Printf.printf "heap id:   %d (for RIV cross-heap pointers)\n"
    (Ralloc.heap_id heap);
  let r = Ralloc.Debug.report heap in
  Format.printf "%a" Ralloc.Debug.pp_report r;
  if status = Ralloc.Dirty_restart then
    (* leave the dirty flag as we found it: info must not "repair" *)
    exit 0
  else Ralloc.close heap

let cmd_roots path =
  let heap, _ = open_heap path in
  let any = ref false in
  for i = 0 to Ralloc.max_roots - 1 do
    let va = Ralloc.get_root heap i in
    if va <> 0 then begin
      any := true;
      Printf.printf "root %4d -> offset %#x%s\n" i
        (va - Ralloc.sb_base heap)
        (if Ralloc.valid_block heap va then "" else "  (INVALID BLOCK!)")
    end
  done;
  if not !any then print_endline "no roots registered";
  exit 0 (* read-only: do not clear a dirty flag *)

let cmd_fsck path =
  let heap, status = open_heap path in
  Printf.printf "fsck %s: %s\n" path
    (match status with
    | Ralloc.Dirty_restart -> "heap is dirty, recovering"
    | Ralloc.Clean_restart -> "heap is clean, verifying by re-collection"
    | Ralloc.Fresh -> "freshly created heap");
  (* conservative trace: no filters available to an offline tool *)
  let stats = Ralloc.recover heap in
  Printf.printf "reachable blocks:        %d\n" stats.reachable_blocks;
  Printf.printf "superblocks reclaimed:   %d\n" stats.reclaimed_superblocks;
  Printf.printf "superblocks partial:     %d\n" stats.partial_superblocks;
  Printf.printf "trace time:              %.4f s\n" stats.trace_seconds;
  Printf.printf "rebuild time:            %.4f s\n" stats.rebuild_seconds;
  let r = Ralloc.Debug.report heap in
  Printf.printf "post-fsck allocated:     %d blocks\n" r.total_allocated_blocks;
  Ralloc.close heap;
  print_endline "heap closed clean."

open Cmdliner

let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH")

let cmds =
  [
    Cmd.v
      (Cmd.info "info" ~doc:"Show heap layout and utilization.")
      Term.(const cmd_info $ path_arg);
    Cmd.v
      (Cmd.info "fsck"
         ~doc:"Garbage-collect and rebuild the heap's metadata (recovery).")
      Term.(const cmd_fsck $ path_arg);
    Cmd.v
      (Cmd.info "roots" ~doc:"List registered persistent roots.")
      Term.(const cmd_roots $ path_arg);
  ]

let () =
  let info = Cmd.info "rheap" ~doc:"Inspect and repair Ralloc heap files" in
  exit (Cmd.eval (Cmd.group info cmds))
