bin/rheap.ml: Arg Cmd Cmdliner Format Printf Ralloc Sys Term
