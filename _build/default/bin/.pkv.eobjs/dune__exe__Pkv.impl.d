bin/pkv.ml: Arg Cmd Cmdliner Dstruct Filename Printf Ralloc Term
