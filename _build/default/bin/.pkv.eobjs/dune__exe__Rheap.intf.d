bin/rheap.mli:
