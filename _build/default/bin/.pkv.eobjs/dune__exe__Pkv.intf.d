bin/pkv.mli:
