(* pkvc: client CLI for pkvd.

     pkvc set 10 42            pkvc sset name ralloc
     pkvc get 10               pkvc sget name
     pkvc del 10               pkvc sdel name
     pkvc stats                # Prometheus exposition from the server
     pkvc flush                # force a group commit on every worker
     pkvc ping
     pkvc watch                # live metrics-black-box dashboard
     pkvc load 10000           # bulk load over --conns connections

   Exit codes: 0 ok, 1 not found, 2 busy (backpressure), 3 server error.
   --retry N retries the initial connect (server still starting up). *)

module Proto = Server.Proto

let addr_of socket port =
  match port with
  | Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
  | None -> Unix.ADDR_UNIX socket

let connect ?(retries = 0) addr =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let rec go n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when n > 0 ->
      Unix.close fd;
      Unix.sleepf 0.1;
      go (n - 1)
  in
  go retries

let rpc fd req =
  Proto.write_frame fd (Proto.encode_request req);
  match Proto.read_frame fd with
  | None -> failwith "pkvc: server closed the connection"
  | Some payload -> (
    match Proto.decode_response payload with
    | Ok r -> r
    | Error e -> failwith ("pkvc: " ^ e))

let finish = function
  | Proto.Ok -> ()
  | Proto.Value v -> Printf.printf "%d\n" v
  | Proto.Svalue s -> print_endline s
  | Proto.Text s -> print_string s
  | Proto.Not_found ->
    prerr_endline "not found";
    exit 1
  | Proto.Busy ->
    prerr_endline "busy (queue full): retry";
    exit 2
  | Proto.Error e ->
    prerr_endline ("server error: " ^ e);
    exit 3

let one_shot socket port retries req =
  let fd = connect ~retries (addr_of socket port) in
  let resp = rpc fd req in
  Unix.close fd;
  finish resp

(* Bulk load: [conns] threads, each sending its slice of [n] synchronous
   SETs (ints, or strings with [--strings]); BUSY replies are retried with
   a small backoff — the client-side half of the backpressure contract. *)
let cmd_load socket port retries n start conns strings =
  let addr = addr_of socket port in
  let slice = (n + conns - 1) / conns in
  let done_count = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker c =
    let fd = connect ~retries addr in
    let lo = start + (c * slice) in
    let hi = min (start + n) (lo + slice) in
    for k = lo to hi - 1 do
      let req =
        if strings then
          Proto.Sset (Printf.sprintf "key%d" k, Printf.sprintf "val%d" k)
        else Proto.Set (k, k * 2)
      in
      let rec send backoff =
        match rpc fd req with
        | Proto.Ok -> Atomic.incr done_count
        | Proto.Busy ->
          Unix.sleepf backoff;
          send (min 0.05 (backoff *. 2.))
        | Proto.Error e -> failwith ("pkvc load: " ^ e)
        | _ -> failwith "pkvc load: unexpected reply"
      in
      send 0.001
    done;
    Unix.close fd
  in
  let threads = List.init conns (fun c -> Thread.create worker c) in
  List.iter Thread.join threads;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "loaded %d keys in %.3fs (%.0f ops/s)\n"
    (Atomic.get done_count) dt
    (float_of_int (Atomic.get done_count) /. dt)

(* Connection-scale bench: hold [conns] open connections while [active]
   of them do synchronous SET/GET traffic — the client half of the
   server_scale story.  The idle majority proves the event loops carry a
   large connection set; the active minority measures what that does to
   latency.  Reports ops/s and latency quantiles, then pings a few idle
   connections to prove they survived the load. *)
let cmd_bench socket port retries conns active n keys =
  (* connections refused by admission control (BUSY + close) must show up
     in the report, not kill the client with SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr = addr_of socket port in
  let active = min active conns in
  let idle_n = conns - active in
  let idle = Array.init idle_n (fun _ -> connect ~retries addr) in
  let slice = (n + active - 1) / active in
  let lat = Array.make_matrix active slice 0 in
  let counts = Array.make active 0 in
  let t0 = Unix.gettimeofday () in
  let worker c =
    let fd = connect ~retries addr in
    for i = 0 to slice - 1 do
      let k = (c * slice) + i in
      let req =
        if i land 1 = 0 then Proto.Set (k mod keys, k) else Proto.Get (k mod keys)
      in
      let rec send backoff =
        let s = Obs.now_ns () in
        match rpc fd req with
        | Proto.Busy ->
          Unix.sleepf backoff;
          send (min 0.05 (backoff *. 2.))
        | Proto.Error e -> failwith ("pkvc bench: " ^ e)
        | _ ->
          lat.(c).(counts.(c)) <- Obs.now_ns () - s;
          counts.(c) <- counts.(c) + 1
      in
      send 0.001
    done;
    Unix.close fd
  in
  let threads =
    List.init active (fun c ->
        Thread.create (fun c -> try worker c with _ -> ()) c)
  in
  List.iter Thread.join threads;
  let dt = Unix.gettimeofday () -. t0 in
  let all =
    Array.concat
      (List.init active (fun c -> Array.sub lat.(c) 0 counts.(c)))
  in
  Array.sort compare all;
  let total = Array.length all in
  let q p =
    if total = 0 then 0
    else all.(min (total - 1) (int_of_float (p *. float_of_int total)))
  in
  (* the held-open connections must still be live after the storm *)
  let survivors = ref 0 in
  Array.iteri
    (fun i fd ->
      if i < 8 then (
        match rpc fd Proto.Ping with
        | Proto.Ok -> incr survivors
        | _ | (exception _) -> ())
      else incr survivors)
    idle;
  Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) idle;
  Printf.printf
    "bench: %d conns held (%d idle, %d active), %d ops in %.3fs\n\
     %.0f ops/s  p50 %.1f us  p99 %.1f us  max %.1f us\n\
     idle connections alive after load: %s\n"
    conns idle_n active total dt
    (float_of_int total /. dt)
    (float_of_int (q 0.50) /. 1e3)
    (float_of_int (q 0.99) /. 1e3)
    (float_of_int (q 1.0) /. 1e3)
    (if !survivors = idle_n then "ok" else Printf.sprintf "LOST %d" (idle_n - !survivors))

(* ------------------------------ pkvc top ------------------------------- *)
(* A polling live view over the STATS reply: parse the Prometheus text
   into a flat table (metric name incl. quantile label -> value), diff
   consecutive samples for rates and per-stage shares, and redraw. *)

let parse_prom text =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line > 0 && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | Some i -> (
          let name = String.sub line 0 i in
          match
            float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))
          with
          | Some v -> Hashtbl.replace tbl name v
          | None -> ())
        | None -> ())
    (String.split_on_char '\n' text);
  tbl

(* worker-indexed gauge series like server_queue_depth_w0, _w1, ... *)
let indexed tbl prefix =
  let lp = String.length prefix in
  Hashtbl.fold
    (fun k v acc ->
      if String.length k > lp && String.sub k 0 lp = prefix then
        (String.sub k lp (String.length k - lp), v) :: acc
      else acc)
    tbl []
  |> List.sort compare

let stage_names = Server.Rtrace.stages

let render ~raw prev cur dt =
  if not raw then print_string "\027[2J\027[H";
  let g k = match Hashtbl.find_opt cur k with Some v -> v | None -> 0.0 in
  let d k =
    match prev with
    | Some p ->
      g k -. (match Hashtbl.find_opt p k with Some v -> v | None -> 0.0)
    | None -> g k
  in
  let rate k = if dt > 0.0 then d k /. dt else 0.0 in
  (match prev with
  | None -> Printf.printf "pkvd top — first sample (lifetime totals)\n"
  | Some _ -> Printf.printf "pkvd top — %.1fs window\n" dt);
  if prev = None then
    Printf.printf "  ops %.0f  writes %.0f  busy %.0f  commits %.0f\n"
      (g "server_ops") (g "server_writes") (g "server_busy")
      (g "server_commits")
  else
    Printf.printf "  ops/s %.0f  writes/s %.0f  busy/s %.0f  commits/s %.0f\n"
      (rate "server_ops") (rate "server_writes") (rate "server_busy")
      (rate "server_commits");
  let series label prefix =
    match indexed cur prefix with
    | [] -> ()
    | l ->
      Printf.printf "  %s:" label;
      List.iter (fun (w, v) -> Printf.printf " w%s=%.0f" w v) l;
      print_newline ()
  in
  series "queue depth" "server_queue_depth_w";
  series "batch fill" "server_batch_fill_w";
  List.iter
    (fun cls ->
      let sum st = Printf.sprintf "server_span_%s_sum_%s_ns" cls st in
      let tail st = Printf.sprintf "server_span_%s_tail_%s_ns" cls st in
      let q st q =
        Printf.sprintf "span_server_%s_%s_ns{quantile=\"%s\"}" cls st q
      in
      let tot = d (sum "total") and ttot = d (tail "total") in
      if tot > 0.0 then begin
        Printf.printf
          "  %s ops — total p50=%.0fus p99=%.0fus — stage share%% (tail%%):\n"
          cls
          (g (q "total" "0.5") /. 1e3)
          (g (q "total" "0.99") /. 1e3);
        Printf.printf "   ";
        Array.iter
          (fun st ->
            let share = 100.0 *. d (sum st) /. tot in
            let tshare = if ttot > 0.0 then 100.0 *. d (tail st) /. ttot else 0.0 in
            if share >= 0.05 || tshare >= 0.05 then
              Printf.printf " %s %.1f%% (%.1f%%)" st share tshare)
          stage_names;
        print_newline ()
      end)
    [ "write"; "read" ];
  flush stdout

(* ------------------------------ pkvc prof ------------------------------ *)
(* Top allocation sites from the server's heap profiler: pull STATS and
   pivot the prof_* families (one line per site per family) into a table
   sorted by estimated live bytes. *)

let cmd_prof socket port retries top =
  let fd = connect ~retries (addr_of socket port) in
  let text =
    match rpc fd Proto.Stats with
    | Proto.Text s -> s
    | _ -> failwith "pkvc prof: unexpected STATS reply"
  in
  Unix.close fd;
  let sites = Hashtbl.create 32 in
  (* family -> (site -> value), parsed from lines like
     prof_live_bytes{site="store.iset"} 123456 *)
  let scan line =
    let line = String.trim line in
    let take family =
      let pre = family ^ "{site=\"" in
      let lp = String.length pre in
      if String.length line > lp && String.sub line 0 lp = pre then
        match String.index_from_opt line lp '"' with
        | Some q ->
          let site = String.sub line lp (q - lp) in
          (match String.rindex_opt line ' ' with
          | Some i -> (
            match
              float_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
            with
            | Some v ->
              let row =
                match Hashtbl.find_opt sites site with
                | Some r -> r
                | None ->
                  let r = Hashtbl.create 4 in
                  Hashtbl.replace sites site r;
                  r
              in
              Hashtbl.replace row family v
            | None -> ())
          | None -> ())
        | None -> ()
    in
    List.iter take
      [ "prof_live_bytes"; "prof_live_blocks"; "prof_cum_bytes_total";
        "prof_cum_blocks_total" ]
  in
  List.iter scan (String.split_on_char '\n' text);
  if Hashtbl.length sites = 0 then
    print_endline
      "no profile data (start pkvd with --prof-rate, then apply some load)"
  else begin
    let rows =
      Hashtbl.fold
        (fun site row acc ->
          let g f =
            match Hashtbl.find_opt row f with Some v -> v | None -> 0.0
          in
          ( site,
            g "prof_live_bytes",
            g "prof_live_blocks",
            g "prof_cum_bytes_total",
            g "prof_cum_blocks_total" )
          :: acc)
        sites []
      |> List.sort (fun (_, a, _, _, _) (_, b, _, _, _) -> compare b a)
    in
    Printf.printf "%-28s %14s %12s %14s %12s\n" "site" "live_bytes"
      "live_blocks" "cum_bytes" "cum_blocks";
    List.iteri
      (fun i (site, lb, lk, cb, ck) ->
        if top = 0 || i < top then
          Printf.printf "%-28s %14.0f %12.0f %14.0f %12.0f\n" site lb lk cb ck)
      rows
  end

(* ----------------------------- pkvc watch ------------------------------ *)
(* Live dashboard over the metrics black box: poll STATS, pick out the
   tsdb_* ride-along gauges (the sampler's latest fine-ring sample per
   series) and the slo_breach_total counters, keep a short client-side
   history per series and redraw with sparklines — the online
   counterpart of rstat --timeline. *)

let spark_levels =
  [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
     "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let lo = List.fold_left min (List.hd values) values
    and hi = List.fold_left max (List.hd values) values in
    String.concat ""
      (List.map
         (fun v ->
           let i =
             if hi = lo then 0
             else
               int_of_float
                 ((v -. lo) /. (hi -. lo)
                 *. float_of_int (Array.length spark_levels - 1))
           in
           spark_levels.(i))
         values)

let cmd_watch socket port retries interval count raw =
  if interval <= 0.0 then failwith "pkvc watch: interval must be positive";
  let fd = connect ~retries (addr_of socket port) in
  let raw = raw || not (Unix.isatty Unix.stdout) in
  let fetch () =
    match rpc fd Proto.Stats with
    | Proto.Text s -> parse_prom s
    | _ -> failwith "pkvc watch: unexpected STATS reply"
  in
  let history : (string, float list ref) Hashtbl.t = Hashtbl.create 32 in
  let push name v =
    let h =
      match Hashtbl.find_opt history name with
      | Some h -> h
      | None ->
        let h = ref [] in
        Hashtbl.replace history name h;
        h
    in
    h := v :: !h;
    if List.length !h > 40 then h := List.filteri (fun i _ -> i < 40) !h
  in
  let i = ref 0 in
  while count = 0 || !i < count do
    let cur = fetch () in
    let series =
      Hashtbl.fold
        (fun k v acc ->
          if String.length k > 5 && String.sub k 0 5 = "tsdb_" then
            (String.sub k 5 (String.length k - 5), v) :: acc
          else acc)
        cur []
      |> List.sort compare
    in
    List.iter (fun (name, v) -> push name v) series;
    if not raw then print_string "\027[2J\027[H";
    if series = [] then
      print_endline
        "pkvd watch — no black-box series yet (sampler warming up?)"
    else begin
      Printf.printf "pkvd watch — metrics black box, latest sample per tick\n";
      List.iter
        (fun (name, v) ->
          let h =
            match Hashtbl.find_opt history name with
            | Some h -> List.rev !h
            | None -> []
          in
          Printf.printf "  %-26s %12.0f %s\n" name v (sparkline h))
        series
    end;
    let breaches =
      Hashtbl.fold
        (fun k v acc ->
          let pre = "slo_breach_total{rule=\"" in
          let lp = String.length pre in
          if String.length k > lp && String.sub k 0 lp = pre then
            match String.index_from_opt k lp '"' with
            | Some q -> (String.sub k lp (q - lp), v) :: acc
            | None -> acc
          else acc)
        cur []
      |> List.sort compare
    in
    if breaches <> [] then begin
      Printf.printf "  SLO breaches:";
      List.iter (fun (rule, v) -> Printf.printf " %s=%.0f" rule v) breaches;
      print_newline ()
    end;
    flush stdout;
    incr i;
    if count = 0 || !i < count then Unix.sleepf interval
  done;
  Unix.close fd

let cmd_top socket port retries interval count raw =
  if interval <= 0.0 then failwith "pkvc top: interval must be positive";
  let fd = connect ~retries (addr_of socket port) in
  let raw = raw || not (Unix.isatty Unix.stdout) in
  let fetch () =
    match rpc fd Proto.Stats with
    | Proto.Text s -> parse_prom s
    | _ -> failwith "pkvc top: unexpected STATS reply"
  in
  let prev = ref None in
  let i = ref 0 in
  while count = 0 || !i < count do
    let cur = fetch () in
    let now = Unix.gettimeofday () in
    (match !prev with
    | None -> render ~raw None cur 0.0
    | Some (p, t) -> render ~raw (Some p) cur (now -. t));
    prev := Some (cur, now);
    incr i;
    if count = 0 || !i < count then Unix.sleepf interval
  done;
  Unix.close fd

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string (Server.Heap_path.default_socket ())
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Connect to TCP 127.0.0.1:$(docv).")

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:"Retry a refused connect $(docv) times (0.1s apart).")

let key_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"KEY")
let value_arg = Arg.(required & pos 1 (some int) None & info [] ~docv:"VALUE")
let skey_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY")

let svalue_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE")

let common = Term.(const (fun s p r -> (s, p, r)) $ socket_arg $ port_arg $ retry_arg)

let cmds =
  [
    Cmd.v (Cmd.info "get" ~doc:"Fetch an int binding.")
      Term.(
        const (fun (s, p, r) k -> one_shot s p r (Proto.Get k))
        $ common $ key_arg);
    Cmd.v (Cmd.info "set" ~doc:"Store KEY -> VALUE durably (acked after commit).")
      Term.(
        const (fun (s, p, r) k v -> one_shot s p r (Proto.Set (k, v)))
        $ common $ key_arg $ value_arg);
    Cmd.v (Cmd.info "del" ~doc:"Delete an int binding.")
      Term.(
        const (fun (s, p, r) k -> one_shot s p r (Proto.Del k))
        $ common $ key_arg);
    Cmd.v (Cmd.info "sget" ~doc:"Fetch a string binding.")
      Term.(
        const (fun (s, p, r) k -> one_shot s p r (Proto.Sget k))
        $ common $ skey_arg);
    Cmd.v (Cmd.info "sset" ~doc:"Store a string binding durably.")
      Term.(
        const (fun (s, p, r) k v -> one_shot s p r (Proto.Sset (k, v)))
        $ common $ skey_arg $ svalue_arg);
    Cmd.v (Cmd.info "sdel" ~doc:"Delete a string binding.")
      Term.(
        const (fun (s, p, r) k -> one_shot s p r (Proto.Sdel k))
        $ common $ skey_arg);
    Cmd.v (Cmd.info "stats" ~doc:"Print server metrics (Prometheus format).")
      Term.(const (fun (s, p, r) -> one_shot s p r Proto.Stats) $ common);
    Cmd.v (Cmd.info "flush" ~doc:"Force a group commit on every worker.")
      Term.(const (fun (s, p, r) -> one_shot s p r Proto.Flush) $ common);
    Cmd.v (Cmd.info "ping" ~doc:"Check the server is up.")
      Term.(const (fun (s, p, r) -> one_shot s p r Proto.Ping) $ common);
    Cmd.v (Cmd.info "load" ~doc:"Bulk-load N keys over several connections.")
      Term.(
        const (fun (s, p, r) n start conns strings ->
            cmd_load s p r n start conns strings)
        $ common
        $ Arg.(value & pos 0 int 1000 & info [] ~docv:"N")
        $ Arg.(value & opt int 0 & info [ "start" ] ~docv:"K" ~doc:"First key.")
        $ Arg.(
            value & opt int 4
            & info [ "conns" ] ~docv:"C" ~doc:"Client connections.")
        $ Arg.(
            value & flag
            & info [ "strings" ] ~doc:"Load string bindings instead of ints."));
    Cmd.v
      (Cmd.info "bench"
         ~doc:
           "Connection-scale bench: hold $(b,--conns) open connections while \
            $(b,--active) of them run a 50/50 SET/GET load, then report \
            ops/s and latency quantiles and check the idle connections \
            survived.")
      Term.(
        const (fun (s, p, r) conns active n keys ->
            cmd_bench s p r conns active n keys)
        $ common
        $ Arg.(
            value & opt int 1024
            & info [ "conns" ] ~docv:"C"
                ~doc:"Connections to hold open (idle + active).")
        $ Arg.(
            value & opt int 64
            & info [ "active" ] ~docv:"A"
                ~doc:"Connections that actually send traffic.")
        $ Arg.(value & pos 0 int 50_000 & info [] ~docv:"N")
        $ Arg.(
            value & opt int 4096
            & info [ "keys" ] ~docv:"K" ~doc:"Key-space size."));
    Cmd.v
      (Cmd.info "prof"
         ~doc:
           "Top allocation sites from the server's sampling heap profiler \
            (pkvd --prof-rate), by estimated live bytes.")
      Term.(
        const (fun (s, p, r) top -> cmd_prof s p r top)
        $ common
        $ Arg.(
            value & opt int 20
            & info [ "top" ] ~docv:"N"
                ~doc:"Show only the $(docv) largest sites (0 = all)."));
    Cmd.v
      (Cmd.info "top"
         ~doc:
           "Live server view: ops/s, per-shard queue depths, batch fill, and \
            the request-stage latency breakdown, polled from STATS.")
      Term.(
        const (fun (s, p, r) interval count raw -> cmd_top s p r interval count raw)
        $ common
        $ Arg.(
            value & opt float 1.0
            & info [ "interval" ] ~docv:"SECONDS" ~doc:"Polling interval.")
        $ Arg.(
            value & opt int 0
            & info [ "count" ] ~docv:"N"
                ~doc:"Stop after $(docv) samples (0 = run until ^C).")
        $ Arg.(
            value & flag
            & info [ "raw" ]
                ~doc:"Append samples instead of redrawing (default off a tty)."));
    Cmd.v
      (Cmd.info "watch"
         ~doc:
           "Live dashboard over the server's metrics black box: the latest \
            persisted sample of every series (sparklined over the poll \
            history) plus SLO breach totals, polled from STATS.")
      Term.(
        const (fun (s, p, r) interval count raw ->
            cmd_watch s p r interval count raw)
        $ common
        $ Arg.(
            value & opt float 1.0
            & info [ "interval" ] ~docv:"SECONDS" ~doc:"Polling interval.")
        $ Arg.(
            value & opt int 0
            & info [ "count" ] ~docv:"N"
                ~doc:"Stop after $(docv) samples (0 = run until ^C).")
        $ Arg.(
            value & flag
            & info [ "raw" ]
                ~doc:"Append samples instead of redrawing (default off a tty)."));
  ]

let () =
  let info = Cmd.info "pkvc" ~doc:"pkvd client" in
  exit (Cmd.eval (Cmd.group info cmds))
