(* pkvc: client CLI for pkvd.

     pkvc set 10 42            pkvc sset name ralloc
     pkvc get 10               pkvc sget name
     pkvc del 10               pkvc sdel name
     pkvc stats                # Prometheus exposition from the server
     pkvc flush                # force a group commit on every worker
     pkvc ping
     pkvc load 10000           # bulk load over --conns connections

   Exit codes: 0 ok, 1 not found, 2 busy (backpressure), 3 server error.
   --retry N retries the initial connect (server still starting up). *)

module Proto = Server.Proto

let addr_of socket port =
  match port with
  | Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
  | None -> Unix.ADDR_UNIX socket

let connect ?(retries = 0) addr =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let rec go n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when n > 0 ->
      Unix.close fd;
      Unix.sleepf 0.1;
      go (n - 1)
  in
  go retries

let rpc fd req =
  Proto.write_frame fd (Proto.encode_request req);
  match Proto.read_frame fd with
  | None -> failwith "pkvc: server closed the connection"
  | Some payload -> (
    match Proto.decode_response payload with
    | Ok r -> r
    | Error e -> failwith ("pkvc: " ^ e))

let finish = function
  | Proto.Ok -> ()
  | Proto.Value v -> Printf.printf "%d\n" v
  | Proto.Svalue s -> print_endline s
  | Proto.Text s -> print_string s
  | Proto.Not_found ->
    prerr_endline "not found";
    exit 1
  | Proto.Busy ->
    prerr_endline "busy (queue full): retry";
    exit 2
  | Proto.Error e ->
    prerr_endline ("server error: " ^ e);
    exit 3

let one_shot socket port retries req =
  let fd = connect ~retries (addr_of socket port) in
  let resp = rpc fd req in
  Unix.close fd;
  finish resp

(* Bulk load: [conns] threads, each sending its slice of [n] synchronous
   SETs (ints, or strings with [--strings]); BUSY replies are retried with
   a small backoff — the client-side half of the backpressure contract. *)
let cmd_load socket port retries n start conns strings =
  let addr = addr_of socket port in
  let slice = (n + conns - 1) / conns in
  let done_count = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker c =
    let fd = connect ~retries addr in
    let lo = start + (c * slice) in
    let hi = min (start + n) (lo + slice) in
    for k = lo to hi - 1 do
      let req =
        if strings then
          Proto.Sset (Printf.sprintf "key%d" k, Printf.sprintf "val%d" k)
        else Proto.Set (k, k * 2)
      in
      let rec send backoff =
        match rpc fd req with
        | Proto.Ok -> Atomic.incr done_count
        | Proto.Busy ->
          Unix.sleepf backoff;
          send (min 0.05 (backoff *. 2.))
        | Proto.Error e -> failwith ("pkvc load: " ^ e)
        | _ -> failwith "pkvc load: unexpected reply"
      in
      send 0.001
    done;
    Unix.close fd
  in
  let threads = List.init conns (fun c -> Thread.create worker c) in
  List.iter Thread.join threads;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "loaded %d keys in %.3fs (%.0f ops/s)\n"
    (Atomic.get done_count) dt
    (float_of_int (Atomic.get done_count) /. dt)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string (Server.Heap_path.default_socket ())
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Connect to TCP 127.0.0.1:$(docv).")

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:"Retry a refused connect $(docv) times (0.1s apart).")

let key_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"KEY")
let value_arg = Arg.(required & pos 1 (some int) None & info [] ~docv:"VALUE")
let skey_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY")

let svalue_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE")

let common = Term.(const (fun s p r -> (s, p, r)) $ socket_arg $ port_arg $ retry_arg)

let cmds =
  [
    Cmd.v (Cmd.info "get" ~doc:"Fetch an int binding.")
      Term.(
        const (fun (s, p, r) k -> one_shot s p r (Proto.Get k))
        $ common $ key_arg);
    Cmd.v (Cmd.info "set" ~doc:"Store KEY -> VALUE durably (acked after commit).")
      Term.(
        const (fun (s, p, r) k v -> one_shot s p r (Proto.Set (k, v)))
        $ common $ key_arg $ value_arg);
    Cmd.v (Cmd.info "del" ~doc:"Delete an int binding.")
      Term.(
        const (fun (s, p, r) k -> one_shot s p r (Proto.Del k))
        $ common $ key_arg);
    Cmd.v (Cmd.info "sget" ~doc:"Fetch a string binding.")
      Term.(
        const (fun (s, p, r) k -> one_shot s p r (Proto.Sget k))
        $ common $ skey_arg);
    Cmd.v (Cmd.info "sset" ~doc:"Store a string binding durably.")
      Term.(
        const (fun (s, p, r) k v -> one_shot s p r (Proto.Sset (k, v)))
        $ common $ skey_arg $ svalue_arg);
    Cmd.v (Cmd.info "sdel" ~doc:"Delete a string binding.")
      Term.(
        const (fun (s, p, r) k -> one_shot s p r (Proto.Sdel k))
        $ common $ skey_arg);
    Cmd.v (Cmd.info "stats" ~doc:"Print server metrics (Prometheus format).")
      Term.(const (fun (s, p, r) -> one_shot s p r Proto.Stats) $ common);
    Cmd.v (Cmd.info "flush" ~doc:"Force a group commit on every worker.")
      Term.(const (fun (s, p, r) -> one_shot s p r Proto.Flush) $ common);
    Cmd.v (Cmd.info "ping" ~doc:"Check the server is up.")
      Term.(const (fun (s, p, r) -> one_shot s p r Proto.Ping) $ common);
    Cmd.v (Cmd.info "load" ~doc:"Bulk-load N keys over several connections.")
      Term.(
        const (fun (s, p, r) n start conns strings ->
            cmd_load s p r n start conns strings)
        $ common
        $ Arg.(value & pos 0 int 1000 & info [] ~docv:"N")
        $ Arg.(value & opt int 0 & info [ "start" ] ~docv:"K" ~doc:"First key.")
        $ Arg.(
            value & opt int 4
            & info [ "conns" ] ~docv:"C" ~doc:"Client connections.")
        $ Arg.(
            value & flag
            & info [ "strings" ] ~doc:"Load string bindings instead of ints."));
  ]

let () =
  let info = Cmd.info "pkvc" ~doc:"pkvd client" in
  exit (Cmd.eval (Cmd.group info cmds))
