(* pkvd: the long-running pkv server daemon.

   Serves the persistent KV heap over a Unix-domain (default) or TCP
   socket with group-fenced write batching — see lib/server/core.mli for
   the pipeline and durability contract.  SIGTERM/SIGINT drain every
   worker's batch, commit it, and close the heap cleanly; a SIGKILL (or
   power loss) leaves a dirty image that the next open recovers. *)

let run heap size socket port workers loops max_conns batch batch_usec
    queue_cap slow_us trace prof_rate metrics_port slo tick_s =
  let addr =
    match port with
    | Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    | None -> Unix.ADDR_UNIX socket
  in
  let config =
    {
      (Server.Core.default_config ~heap_path:heap ()) with
      heap_size = size;
      workers;
      loops;
      max_conns;
      batch;
      batch_usec;
      queue_cap;
      slow_us;
      prof_rate;
      metrics_port;
      slo;
      tick_s;
    }
  in
  (* request-span trace events only exist while Obs.Trace is buffering;
     the buffer is dumped as Chrome trace_event JSON at graceful stop.
     Size the ring up front: a wrapped ring drops the oldest events,
     which can orphan a request's stage spans from their op.* parent. *)
  if trace <> None then begin
    Obs.Trace.set_capacity 65_536;
    Obs.Trace.set_enabled true
  end;
  let srv = Server.Core.start ~config addr in
  let st = Server.Core.store srv in
  (match st.recovery with
  | Some r ->
    Printf.eprintf "pkvd: dirty image recovered (%d blocks, %.3fs)\n%!"
      r.reachable_blocks
      (r.trace_seconds +. r.rebuild_seconds)
  | None -> ());
  Printf.eprintf
    "pkvd: serving %s on %s (%d workers, %d %s loop%s, max %d conns, batch %d, \
     %d us)\n\
     %!"
    heap
    (match addr with
    | Unix.ADDR_UNIX p -> p
    | Unix.ADDR_INET (_, p) -> Printf.sprintf "127.0.0.1:%d" p)
    workers loops
    (Server.Evloop.backend_name (Server.Evloop.default_backend ()))
    (if loops = 1 then "" else "s")
    max_conns batch batch_usec;
  if prof_rate > 0 then
    Printf.eprintf "pkvd: heap profiler on (1 sample / %d bytes)\n%!" prof_rate;
  if slo <> "" then Printf.eprintf "pkvd: SLO watchdog on (%s)\n%!" slo;
  (match metrics_port with
  | Some p -> Printf.eprintf "pkvd: metrics on http://127.0.0.1:%d/metrics\n%!" p
  | None -> ());
  let quit = Atomic.make false in
  let request_stop _ = Atomic.set quit true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  while not (Atomic.get quit) do
    Unix.sleepf 0.05
  done;
  Printf.eprintf "pkvd: draining and closing\n%!";
  Server.Core.stop srv;
  match trace with
  | Some path ->
    Obs.Trace.write_chrome_trace path;
    Printf.eprintf "pkvd: wrote Chrome trace to %s\n%!" path
  | None -> ()

open Cmdliner

let heap_arg =
  Arg.(
    value
    & opt string (Server.Heap_path.default_heap ())
    & info [ "heap" ] ~docv:"PATH" ~doc:"Heap file path prefix.")

let size_arg =
  Arg.(
    value
    & opt int Server.Store.default_size
    & info [ "size" ] ~docv:"BYTES" ~doc:"Heap capacity for a fresh store.")

let socket_arg =
  Arg.(
    value
    & opt string (Server.Heap_path.default_socket ())
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on TCP 127.0.0.1:$(docv) instead of the Unix socket.")

let workers_arg =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~docv:"N" ~doc:"Worker domains (queue shards).")

let loops_arg =
  Arg.(
    value & opt int 1
    & info [ "loops" ] ~docv:"N"
        ~doc:
          "Event-loop threads; each owns a share of the connections \
           (accepts are dealt round-robin).")

let max_conns_arg =
  Arg.(
    value & opt int 8192
    & info [ "max-conns" ] ~docv:"N"
        ~doc:
          "Admission-control cap on live connections: a connection accepted \
           past the cap is sent one BUSY frame and closed.")

let batch_arg =
  Arg.(
    value & opt int 32
    & info [ "batch" ] ~docv:"N"
        ~doc:"Writes per group commit: one fence makes $(docv) writes durable.")

let batch_usec_arg =
  Arg.(
    value & opt int 500
    & info [ "batch-usec" ] ~docv:"T"
        ~doc:"Max age of an unacked write before a forced commit.")

let queue_cap_arg =
  Arg.(
    value & opt int 256
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:"Per-worker queue bound; overflow returns BUSY.")

let slow_us_arg =
  Arg.(
    value & opt int 0
    & info [ "slow-us" ] ~docv:"T"
        ~doc:
          "Log any request slower than $(docv) microseconds to stderr (and \
           the flight recorder) with its full stage breakdown; 0 disables.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Buffer request-stage span events and write them as Chrome \
           trace_event JSON to $(docv) on graceful shutdown.")

let prof_rate_arg =
  Arg.(
    value & opt int 0
    & info [ "prof-rate" ] ~docv:"BYTES"
        ~doc:
          "Enable the sampling heap profiler: attribute roughly one \
           allocation per $(docv) allocated bytes to its store-operation \
           site, durably (survives SIGKILL; see rstat --prof).  0 \
           disables.")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve the Prometheus exposition over plain HTTP on \
           127.0.0.1:$(docv) (GET /metrics).")

let slo_arg =
  Arg.(
    value & opt string ""
    & info [ "slo" ] ~docv:"RULES"
        ~doc:
          "SLO watchdog rules, e.g. $(b,p99_us=500,queue_depth=128): \
           comma-separated key=threshold clauses over p99_us, queue_depth \
           and ext_frag, checked once per metrics tick.  Breaches are \
           counted (slo_breach_total in /metrics) and recorded durably in \
           the flight recorder; add the bare flag $(b,shed) to refuse new \
           requests with BUSY while a rule is breached.")

let tick_arg =
  Arg.(
    value & opt float 1.0
    & info [ "tick" ] ~docv:"SECONDS"
        ~doc:
          "Metrics sampler cadence: every $(docv) seconds one fine sample \
           of every standard series is persisted to the heap's metrics \
           black box (see rstat --timeline) and the SLO rules are \
           evaluated.")

let () =
  let doc = "Crash-recoverable persistent KV server with group commit" in
  let info = Cmd.info "pkvd" ~doc in
  let term =
    Term.(
      const run $ heap_arg $ size_arg $ socket_arg $ port_arg $ workers_arg
      $ loops_arg $ max_conns_arg $ batch_arg $ batch_usec_arg $ queue_cap_arg
      $ slow_us_arg $ trace_arg $ prof_rate_arg $ metrics_port_arg $ slo_arg
      $ tick_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
