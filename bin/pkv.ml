(* pkv: a crash-safe persistent key-value store CLI backed by Ralloc.

   The store is a Natarajan-Mittal tree in a file-backed persistent heap;
   every invocation re-opens the heap (recovering first if the previous
   process died dirty), performs one operation, and closes cleanly.

     pkv set 10 42          # store 10 -> 42
     pkv get 10
     pkv del 10
     pkv list
     pkv stats
     pkv crash-test         # die without closing, to exercise recovery
     pkv sset name claude   # string store (a persistent hash map)
     pkv sget name
     pkv sdel name
   Use --heap PATH to choose the store; the default is per-user
   ($PKV_HEAP, else $XDG_RUNTIME_DIR/pkv-heap, else /tmp/pkv-heap-$USER)
   so two users on one machine cannot corrupt each other's heap. *)

(* Two structures share the heap: an ordered int store (NM tree, root 0)
   and a string store (persistent hash map, root 1) — see
   Server.Store, which pkvd shares. *)
let open_store path =
  let st = Server.Store.open_store path in
  (match st.recovery with
  | Some r ->
    Printf.eprintf
      "pkv: previous run did not close cleanly; recovered %d blocks in %.3fs\n"
      r.reachable_blocks
      (r.trace_seconds +. r.rebuild_seconds)
  | None -> ());
  (st.heap, st.tree, st.smap)

let cmd_set path key value =
  let heap, store, _ = open_store path in
  let fresh = Dstruct.Nmtree.insert store key value in
  if not fresh then begin
    (* NM-tree insert is insert-only: replace = delete + insert *)
    ignore (Dstruct.Nmtree.delete store key);
    ignore (Dstruct.Nmtree.insert store key value)
  end;
  Printf.printf "%d -> %d\n" key value;
  Ralloc.close heap

let cmd_get path key =
  let heap, store, _ = open_store path in
  (match Dstruct.Nmtree.find store key with
  | Some v -> Printf.printf "%d\n" v
  | None ->
    Printf.eprintf "key %d not found\n" key;
    Ralloc.close heap;
    exit 1);
  Ralloc.close heap

let cmd_del path key =
  let heap, store, _ = open_store path in
  let existed = Dstruct.Nmtree.delete store key in
  Ralloc.close heap;
  if not existed then begin
    Printf.eprintf "key %d not found\n" key;
    exit 1
  end

let cmd_list path =
  let heap, store, _ = open_store path in
  Dstruct.Nmtree.iter (fun k v -> Printf.printf "%d -> %d\n" k v) store;
  Ralloc.close heap

let cmd_stats path =
  let heap, store, strings = open_store path in
  let s = Ralloc.stats heap in
  Printf.printf "entries:   %d int, %d string\n" (Dstruct.Nmtree.size store)
    (Dstruct.Phashmap.length strings);
  Printf.printf "capacity:  %d bytes\n" (Ralloc.capacity_bytes heap);
  Printf.printf "flushes:   %d (this session)\n" s.flushes;
  Printf.printf "fences:    %d\n" s.fences;
  Printf.printf "cas ops:   %d\n" s.cas_ops;
  Ralloc.close heap

let cmd_crash_test path n =
  let _heap, store, _ = open_store path in
  for i = 0 to n - 1 do
    ignore (Dstruct.Nmtree.insert store (1_000_000 + i) i)
  done;
  Printf.printf
    "inserted %d keys starting at 1000000 and exiting WITHOUT close();\n\
     the next pkv command will run recovery.\n"
    n;
  exit 0 (* no close: leaves the dirty flag set *)

let cmd_sset path key value =
  let heap, _, strings = open_store path in
  ignore (Dstruct.Phashmap.set strings key value);
  Printf.printf "%s -> %s\n" key value;
  Ralloc.close heap

let cmd_sget path key =
  let heap, _, strings = open_store path in
  (match Dstruct.Phashmap.get strings key with
  | Some v -> print_endline v
  | None ->
    Printf.eprintf "key %s not found\n" key;
    Ralloc.close heap;
    exit 1);
  Ralloc.close heap

let cmd_sdel path key =
  let heap, _, strings = open_store path in
  let existed = Dstruct.Phashmap.delete strings key in
  Ralloc.close heap;
  if not existed then begin
    Printf.eprintf "key %s not found\n" key;
    exit 1
  end

let cmd_slist path =
  let heap, _, strings = open_store path in
  Dstruct.Phashmap.iter (fun k v -> Printf.printf "%s -> %s\n" k v) strings;
  Ralloc.close heap

open Cmdliner

let heap_arg =
  Arg.(
    value
    & opt string (Server.Heap_path.default_heap ())
    & info [ "heap" ] ~docv:"PATH" ~doc:"Heap file path prefix.")

let key_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"KEY")
let value_arg = Arg.(required & pos 1 (some int) None & info [] ~docv:"VALUE")

let skey_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY")

let svalue_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE")

let cmds =
  [
    Cmd.v (Cmd.info "set" ~doc:"Store KEY -> VALUE durably.")
      Term.(const cmd_set $ heap_arg $ key_arg $ value_arg);
    Cmd.v (Cmd.info "get" ~doc:"Print the value bound to KEY.")
      Term.(const cmd_get $ heap_arg $ key_arg);
    Cmd.v (Cmd.info "del" ~doc:"Delete KEY.")
      Term.(const cmd_del $ heap_arg $ key_arg);
    Cmd.v (Cmd.info "list" ~doc:"List all entries in key order.")
      Term.(const cmd_list $ heap_arg);
    Cmd.v (Cmd.info "stats" ~doc:"Show store statistics.")
      Term.(const cmd_stats $ heap_arg);
    Cmd.v (Cmd.info "sset" ~doc:"Store a string binding durably.")
      Term.(const cmd_sset $ heap_arg $ skey_arg $ svalue_arg);
    Cmd.v (Cmd.info "sget" ~doc:"Print the string bound to KEY.")
      Term.(const cmd_sget $ heap_arg $ skey_arg);
    Cmd.v (Cmd.info "sdel" ~doc:"Delete a string binding.")
      Term.(const cmd_sdel $ heap_arg $ skey_arg);
    Cmd.v (Cmd.info "slist" ~doc:"List string bindings.")
      Term.(const cmd_slist $ heap_arg);
    Cmd.v
      (Cmd.info "crash-test"
         ~doc:"Insert keys and exit without closing, to exercise recovery.")
      Term.(
        const cmd_crash_test $ heap_arg
        $ Arg.(value & pos 0 int 100 & info [] ~docv:"N"));
  ]

let () =
  let info = Cmd.info "pkv" ~doc:"Crash-safe persistent key-value store" in
  exit (Cmd.eval (Cmd.group info cmds))
