(* rstat: offline crash-forensics inspector for Ralloc heap images.

     rstat <path>                 summary + census + flight-recorder tail
     rstat --census <path>        occupancy and fragmentation census
     rstat --audit <path>         recoverability audit; exit code is the verdict
     rstat --flight N <path>      last N flight-recorder events
     rstat --prom <path>          Prometheus text exposition of the census
     rstat --chrome FILE <path>   Chrome trace JSON of recovery phases
     rstat --prof <path>          allocation-site provenance of surviving blocks
     rstat --timeline <path>      pre-crash metrics timeline from the black box
     rstat --pcheck-summary <path> trial recovery under the persistency checker

   Unlike [rheap], rstat never opens the heap for writing: the image files
   are read into memory ([Ralloc.open_image]) and nothing is written back,
   so a post-crash image can be inspected — including a trial recovery —
   without disturbing the evidence.

   Audit verdicts (exit codes):
     0  CLEAN    — the recoverability criterion holds (all and only the
                   reachable blocks allocated); for a dirty image, after a
                   trial in-memory recovery
     1  SUSPECT  — recoverable, but the diff is non-empty after recovery
                   (leaked or orphaned blocks)
     2  CORRUPT  — structural violation in a persisted field; recovery
                   cannot be trusted *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("rstat: " ^ s); exit 2) fmt

let open_image path =
  match Ralloc.open_image ~path with
  | t -> t
  | exception Failure msg -> fail "%s" msg

let status_name = function
  | Ralloc.Fresh -> "fresh"
  | Ralloc.Clean_restart -> "clean"
  | Ralloc.Dirty_restart -> "DIRTY (crashed or still open)"

let print_summary path heap status =
  Printf.printf "image:     %s.{meta,desc,sb}\n" path;
  Printf.printf "status:    %s\n" (status_name status);
  Printf.printf "capacity:  %d bytes (%d superblocks)\n"
    (Ralloc.capacity_bytes heap)
    (Ralloc.capacity_bytes heap / 65536);
  Printf.printf "heap id:   %d\n" (Ralloc.heap_id heap);
  (match Ralloc.flight heap with
  | None -> print_endline "flight:    absent (image predates the recorder)"
  | Some f ->
    Printf.printf "flight:    %d events recorded (ring capacity %d, %d torn)\n"
      (Obs.Flight.total_recorded f)
      (Obs.Flight.capacity f) (Obs.Flight.torn_slots f))

let print_census heap =
  Format.printf "%a@." Ralloc.Census.pp (Ralloc.census heap)

let print_flight heap limit =
  match Ralloc.flight heap with
  | None -> print_endline "flight recorder: absent"
  | Some f -> Format.printf "%a@." (Obs.Flight.pp_tail ~limit) f

(* Prometheus text exposition: census + audit-free facts only, so it is
   cheap and side-effect free.  Offsets/ids are labels, not values. *)
let print_prom heap status =
  let c = Ralloc.census heap in
  let gauge name ?(labels = "") value =
    Printf.printf "# TYPE %s gauge\n%s%s %s\n" name name labels value
  in
  let gi name v = gauge name (string_of_int v) in
  let gf name v = gauge name (Printf.sprintf "%.6f" v) in
  gi "ralloc_heap_dirty" (if status = Ralloc.Dirty_restart then 1 else 0);
  gi "ralloc_capacity_bytes" c.Ralloc.Census.capacity_bytes;
  gi "ralloc_provisioned_bytes" c.provisioned_bytes;
  gi "ralloc_provisioned_superblocks" c.provisioned_superblocks;
  gi "ralloc_empty_superblocks" c.empty_superblocks;
  gi "ralloc_large_superblocks" c.large_superblocks;
  gi "ralloc_allocated_blocks" c.allocated_blocks;
  gi "ralloc_free_blocks" c.free_blocks;
  gi "ralloc_allocated_bytes" c.allocated_bytes;
  gi "ralloc_free_bytes" c.free_bytes;
  gi "ralloc_slack_bytes" c.slack_bytes;
  gf "ralloc_occupancy" c.occupancy;
  gf "ralloc_internal_fragmentation" c.internal_frag;
  gf "ralloc_external_fragmentation" c.external_frag;
  print_string "# TYPE ralloc_class_allocated_blocks gauge\n";
  List.iter
    (fun (cs : Ralloc.Census.class_stats) ->
      Printf.printf
        "ralloc_class_allocated_blocks{class=\"%d\",block_size=\"%d\"} %d\n"
        cs.size_class cs.block_size cs.allocated_blocks)
    c.classes;
  match Ralloc.flight heap with
  | None -> ()
  | Some f ->
    print_string "# TYPE ralloc_flight_events_total counter\n";
    for k = 1 to 15 do
      let n = Obs.Flight.kind_count f k in
      if n > 0 then
        Printf.printf "ralloc_flight_events_total{kind=\"%s\"} %d\n"
          (Obs.Flight.Kind.name k) n
    done

(* Chrome trace export: reconstruct recovery-phase spans from the flight
   tail.  recovery_begin .. recovery_trace is the tracing GC,
   recovery_trace .. recovery_done the metadata rebuild.  Timestamps are
   microseconds relative to the oldest event in the tail, which is what
   chrome://tracing and Perfetto expect. *)
let write_chrome heap file =
  match Ralloc.flight heap with
  | None -> fail "no flight recorder in this image: nothing to export"
  | Some f ->
    let events = Obs.Flight.tail f in
    let t0 =
      match events with [] -> 0 | e :: _ -> e.Obs.Flight.ts_ns
    in
    let us ts = float_of_int (ts - t0) /. 1000. in
    let buf = Buffer.create 4096 in
    let first = ref true in
    let emit fmt =
      Printf.ksprintf
        (fun s ->
          if !first then first := false else Buffer.add_string buf ",\n";
          Buffer.add_string buf s)
        fmt
    in
    Buffer.add_string buf "[\n";
    let span name ts dur args =
      emit
        "{\"name\":\"%s\",\"cat\":\"recovery\",\"ph\":\"X\",\"ts\":%.3f,\
         \"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":{%s}}"
        name (us ts) (float_of_int dur /. 1000.) args
    in
    let instant e name args =
      emit
        "{\"name\":\"%s\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"ts\":%.3f,\
         \"s\":\"g\",\"pid\":1,\"tid\":1,\"args\":{%s}}"
        name (us e.Obs.Flight.ts_ns) args
    in
    let begin_ev = ref None and trace_ev = ref None in
    List.iter
      (fun (e : Obs.Flight.event) ->
        let k = e.kind in
        if k = Obs.Flight.Kind.recovery_begin then begin_ev := Some e
        else if k = Obs.Flight.Kind.recovery_trace then begin
          (match !begin_ev with
          | Some b ->
            span "recovery.trace" b.ts_ns (e.ts_ns - b.ts_ns)
              (Printf.sprintf "\"reachable_blocks\":%d" e.a)
          | None -> ());
          trace_ev := Some e
        end
        else if k = Obs.Flight.Kind.recovery_done then begin
          (match !trace_ev with
          | Some t ->
            span "recovery.rebuild" t.ts_ns (e.ts_ns - t.ts_ns)
              (Printf.sprintf "\"reclaimed\":%d,\"partial\":%d" e.a e.arg_b)
          | None -> ());
          (match !begin_ev with
          | Some b ->
            span "recovery" b.ts_ns (e.ts_ns - b.ts_ns)
              (Printf.sprintf "\"superblocks\":%d" b.a)
          | None -> ());
          begin_ev := None;
          trace_ev := None
        end
        else if k = Obs.Flight.Kind.heap_open then
          instant e "heap_open"
            (Printf.sprintf "\"status\":\"%s\""
               (match e.a with
               | 0 -> "fresh"
               | 1 -> "clean"
               | _ -> "dirty"))
        else if k = Obs.Flight.Kind.heap_close then instant e "heap_close" "")
      events;
    Buffer.add_string buf "\n]\n";
    let oc = open_out file in
    Buffer.output_buffer oc buf;
    close_out oc;
    Printf.printf "chrome trace (%d flight events) written to %s\n"
      (List.length events) file

(* Crash-surviving provenance: replay the persistent provenance ring
   (sampled allocations minus their sampled frees), resolve site ids
   against the image's persistent site-name table, and cross-reference
   each surviving sample against the same reachability trace recovery
   would run — "which site allocated the blocks that survived the
   crash", split into reachable (live) and unreachable (leaked). *)
let print_prof heap =
  match Ralloc.prov heap with
  | None -> print_endline "provenance: absent (image predates the profiler)"
  | Some ring ->
    let live = Obs.Prof.Ring.live ring in
    Printf.printf
      "provenance ring: %d recorded (%d allocs, %d frees, %d torn), %d \
       sampled blocks still allocated\n"
      (Obs.Prof.Ring.total_recorded ring)
      (Obs.Prof.Ring.alloc_count ring)
      (Obs.Prof.Ring.free_count ring)
      (Obs.Prof.Ring.torn_slots ring)
      (List.length live);
    if live <> [] then begin
      let reach = Ralloc.reachable_offsets heap in
      (* site id -> (name option, samples, bytes, reachable_bytes) *)
      let per_site = Hashtbl.create 32 in
      let total = ref 0 and attributed = ref 0 in
      List.iter
        (fun (e : Obs.Prof.Ring.entry) ->
          let name = Ralloc.prov_site_name heap e.psite in
          let n, s, b, rb =
            match Hashtbl.find_opt per_site e.psite with
            | Some r -> r
            | None -> (name, 0, 0, 0)
          in
          let reachable = reach e.poff in
          Hashtbl.replace per_site e.psite
            (n, s + 1, b + e.psize, if reachable then rb + e.psize else rb);
          total := !total + e.psize;
          if name <> None then attributed := !attributed + e.psize)
        live;
      let rows =
        Hashtbl.fold (fun id r acc -> (id, r) :: acc) per_site []
        |> List.sort (fun (_, (_, _, a, _)) (_, (_, _, b, _)) -> compare b a)
      in
      Printf.printf "%-28s %8s %12s %12s %12s\n" "site" "samples"
        "sampled_bytes" "reachable" "leaked";
      List.iter
        (fun (id, (name, s, b, rb)) ->
          Printf.printf "%-28s %8d %12d %12d %12d\n"
            (match name with
            | Some n -> n
            | None -> Printf.sprintf "(site %d: name not persisted)" id)
            s b rb (b - rb))
        rows;
      (* machine-readable attribution line for the crash-suite check:
         the share of surviving sampled bytes whose site id resolves
         against the persistent name table *)
      Printf.printf "prof_sampled_live_bytes %d\n" !total;
      Printf.printf "prof_attribution_pct %.1f\n"
        (if !total = 0 then 100.0
         else 100.0 *. float_of_int !attributed /. float_of_int !total)
    end

(* The metrics timeline: reconstruct the black box's sample rings from
   the (possibly dirty) image and render the last minutes of every
   series — sparkline over the fine ring, latest/mean/max, a last-60 s
   anomaly summary (> k sigma deviations from the series' own history),
   and the flight-recorder events that fall inside the timeline window,
   so "what was the server doing just before the crash" is one command.
   Ends with machine-readable lines for the crash-suite gate. *)
let print_timeline heap =
  match Ralloc.tsdb heap with
  | None -> fail "no metrics black box in this image (pre-v3 layout)"
  | Some db ->
    let n_series = Obs.Tsdb.series_count db in
    let fine = Obs.Tsdb.points db `Fine in
    let mid = Obs.Tsdb.points db `Mid in
    let coarse = Obs.Tsdb.points db `Coarse in
    Printf.printf
      "metrics timeline: %d samples total (%d fine, %d mid, %d coarse \
       reconstructed, %d torn), %d series\n"
      (Obs.Tsdb.total_samples db)
      (List.length fine) (List.length mid) (List.length coarse)
      (Obs.Tsdb.torn_slots db) n_series;
    let spark values =
      (* 8-level Unicode sparkline, scaled to this series' own range *)
      let lo = List.fold_left min max_int values
      and hi = List.fold_left max min_int values in
      let levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                      "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                      "\xe2\x96\x87"; "\xe2\x96\x88" |] in
      String.concat ""
        (List.map
           (fun v ->
             let i =
               if hi = lo then 0
               else (v - lo) * (Array.length levels - 1) / (hi - lo)
             in
             levels.(i))
           values)
    in
    let last_ts = ref 0 in
    for s = 0 to n_series - 1 do
      let name =
        match Obs.Tsdb.series_name db s with
        | Some n -> n
        | None -> Printf.sprintf "series_%d" s
      in
      let pts = Obs.Tsdb.series_points db `Fine s in
      let values =
        List.map (fun (_, v) -> int_of_float (Float.round v)) pts
      in
      (match List.rev pts with
      | (ts, _) :: _ -> last_ts := max !last_ts ts
      | [] -> ());
      let mean, _sigma = Obs.Tsdb.series_stats db `Fine s in
      let last = match List.rev values with v :: _ -> v | [] -> 0 in
      let vmax = List.fold_left max 0 values in
      (* keep the sparkline to the last 60 fine samples *)
      let tail_values =
        let n = List.length values in
        if n <= 60 then values
        else List.filteri (fun i _ -> i >= n - 60) values
      in
      Printf.printf "%-24s last=%-10d mean=%-10.1f max=%-10d %s\n" name last
        mean vmax
        (if tail_values = [] then "(no samples)" else spark tail_values)
    done;
    (* last-60 s anomaly summary over the fine ring *)
    let anomalies = Obs.Tsdb.anomalies ~k:3.0 ~window:60 db in
    if anomalies = [] then
      print_endline "anomalies (last 60 samples, >3 sigma): none"
    else begin
      print_endline "anomalies (last 60 samples, >3 sigma):";
      List.iter
        (fun (a : Obs.Tsdb.anomaly) ->
          Printf.printf
            "  %-24s last=%.1f vs mean=%.1f sigma=%.1f (%.1f sigma off)\n"
            a.an_name a.an_last a.an_mean a.an_sigma
            (if a.an_sigma > 0. then
               Float.abs (a.an_last -. a.an_mean) /. a.an_sigma
             else 0.))
        anomalies
    end;
    (* cross-reference: flight events inside the reconstructed window *)
    (match Ralloc.flight heap with
    | None -> ()
    | Some f ->
      let window_start =
        match fine with
        | p :: _ -> p.Obs.Tsdb.p_ts_ns
        | [] -> max_int
      in
      let events =
        List.filter
          (fun (e : Obs.Flight.event) -> e.ts_ns >= window_start)
          (Obs.Flight.tail f)
      in
      let shown =
        let n = List.length events in
        if n <= 12 then events else List.filteri (fun i _ -> i >= n - 12) events
      in
      Printf.printf "flight events inside the timeline window: %d (last %d):\n"
        (List.length events) (List.length shown);
      List.iter
        (fun (e : Obs.Flight.event) ->
          Printf.printf "  %+8.1fs %-14s a=%d b=%d c=%d\n"
            (float_of_int (e.ts_ns - !last_ts) /. 1e9)
            (Obs.Flight.Kind.name e.kind)
            e.a e.arg_b e.c)
        shown);
    (* machine-readable gate lines *)
    Printf.printf "tsdb_samples_total %d\n" (Obs.Tsdb.total_samples db);
    Printf.printf "tsdb_fine_points %d\n" (List.length fine);
    Printf.printf "tsdb_torn %d\n" (Obs.Tsdb.torn_slots db);
    (* lifetime per-kind counter, not the tail: breach events are rare
       next to allocation events and wrap out of the ring in ms *)
    (match Ralloc.flight heap with
    | Some f ->
      Printf.printf "tsdb_slo_breach_events %d\n"
        (Obs.Flight.kind_count f Obs.Flight.Kind.slo_breach)
    | None -> ());
    for s = 0 to n_series - 1 do
      let name =
        match Obs.Tsdb.series_name db s with
        | Some n -> n
        | None -> Printf.sprintf "series_%d" s
      in
      let values =
        List.map (fun (_, v) -> int_of_float (Float.round v))
          (Obs.Tsdb.series_points db `Fine s)
      in
      let last = match List.rev values with v :: _ -> v | [] -> 0 in
      Printf.printf "tsdb_series name=%s points=%d last=%d max=%d\n" name
        (List.length values) last
        (List.fold_left max 0 values)
    done

(* The audit verdict.  A dirty image is *expected* to have stale transient
   metadata — that is precisely what recovery rebuilds — so the verdict on
   one is rendered after a trial recovery run against the in-memory copy
   (the files are untouched).  A clean image must satisfy the criterion
   as-is. *)
let run_audit heap status max_list =
  let pre = Ralloc.audit ~max_list heap in
  Format.printf "--- audit (as found) ---@.%a@." Ralloc.Audit.pp pre;
  if not pre.Ralloc.Audit.recoverable then begin
    print_endline "verdict: CORRUPT - persisted metadata is structurally invalid";
    exit 2
  end;
  match status with
  | Ralloc.Dirty_restart ->
    print_endline "image is dirty: running trial recovery (in memory only)";
    let stats = Ralloc.recover heap in
    Printf.printf
      "trial recovery: %d reachable, %d superblocks reclaimed, %d partial\n"
      stats.Ralloc.reachable_blocks stats.reclaimed_superblocks
      stats.partial_superblocks;
    let post = Ralloc.audit ~max_list heap in
    Format.printf "--- audit (after trial recovery) ---@.%a@." Ralloc.Audit.pp
      post;
    if post.Ralloc.Audit.consistent then begin
      print_endline "verdict: CLEAN - recovery restores all and only the reachable blocks";
      exit 0
    end
    else begin
      print_endline "verdict: SUSPECT - inconsistent even after recovery";
      exit 1
    end
  | _ ->
    if pre.Ralloc.Audit.consistent then begin
      print_endline "verdict: CLEAN - all and only the reachable blocks are allocated";
      exit 0
    end
    else begin
      print_endline "verdict: SUSPECT - cleanly closed image violates the criterion";
      exit 1
    end

(* Replay a trial recovery with the persistency checker enabled.  The
   image is an offline snapshot: no pre-crash pending-flush state exists
   in this process, so the shadow starts clean and the findings are sound
   for the recovery path itself — every flush, fence, and waste event the
   rebuild issues, attributed per site, plus any read of data the checker
   watched become non-durable during the replay.  The files are never
   written (same in-memory discipline as --audit). *)
let run_pcheck_summary heap status =
  (match status with
  | Ralloc.Dirty_restart ->
    print_endline
      "image is dirty: replaying trial recovery under the persistency checker"
  | _ ->
    print_endline
      "image is clean: replaying recovery anyway to profile its flush/fence \
       behaviour");
  Pmem.Check.set_enabled true;
  Pmem.Check.reset ();
  let stats = Ralloc.recover heap in
  Pmem.Check.set_enabled false;
  Printf.printf
    "trial recovery: %d reachable, %d superblocks reclaimed, %d partial\n"
    stats.Ralloc.reachable_blocks stats.reclaimed_superblocks
    stats.partial_superblocks;
  Pmem.Check.report Format.std_formatter;
  let t = Pmem.Check.totals () in
  if t.Pmem.Check.t_violations > 0 then begin
    print_endline "verdict: VIOLATIONS - recovery read non-durable data";
    exit 1
  end

let run path census audit flight prom chrome max_list pcheck_summary prof
    timeline =
  let heap, status = open_image path in
  let explicit =
    census || audit || flight <> None || prom || chrome <> None
    || pcheck_summary || prof || timeline
  in
  if prom then print_prom heap status
  else begin
    if not explicit then begin
      print_summary path heap status;
      print_newline ();
      print_census heap;
      print_endline "--- flight tail ---";
      print_flight heap 16
    end;
    if census then print_census heap;
    (match flight with Some n -> print_flight heap n | None -> ());
    (match chrome with Some file -> write_chrome heap file | None -> ());
    if prof then print_prof heap;
    if timeline then print_timeline heap;
    if pcheck_summary then run_pcheck_summary heap status;
    if audit then run_audit heap status max_list
  end

open Cmdliner

let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH")

let census_flag =
  Arg.(value & flag & info [ "census" ] ~doc:"Print the occupancy/fragmentation census.")

let audit_flag =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Run the recoverability audit and exit with the verdict: 0 clean, 1 \
           suspect, 2 corrupt.  Dirty images get a trial in-memory recovery \
           first; the files are never written.")

let flight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight" ] ~docv:"N" ~doc:"Print the last $(docv) flight-recorder events.")

let prom_flag =
  Arg.(
    value & flag
    & info [ "prom" ] ~doc:"Emit the census as Prometheus text exposition and exit.")

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:"Write recovery-phase spans from the flight tail as Chrome trace JSON.")

let max_list_arg =
  Arg.(
    value & opt int 64
    & info [ "max-list" ] ~docv:"N"
        ~doc:"Cap on listed leaked/orphaned blocks (counts stay exact).")

let prof_flag =
  Arg.(
    value & flag
    & info [ "prof" ]
        ~doc:
          "Replay the persistent provenance ring: which allocation sites own \
           the sampled blocks still allocated in the image, with each \
           surviving sample cross-referenced against the recovery \
           reachability trace (reachable vs leaked bytes).  Requires the \
           image to have run with the heap profiler on (pkvd --prof-rate).")

let timeline_flag =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:
          "Reconstruct the metrics black box (the crash-surviving \
           time-series rings) from the image and render each series' last \
           minutes as a sparkline with a >3-sigma anomaly summary and the \
           flight-recorder events inside the window — the pre-crash \
           timeline.  The image files are never written.")

let pcheck_summary_flag =
  Arg.(
    value & flag
    & info [ "pcheck-summary" ]
        ~doc:
          "Replay a trial in-memory recovery with the persistency checker \
           ($(b,Pmem.Check)) enabled and print its per-site flush/fence \
           report.  Exits 1 if the recovery path read data the checker saw \
           become non-durable.  The image files are never written.")

let () =
  let info =
    Cmd.info "rstat"
      ~doc:"Offline crash-forensics inspector for Ralloc heap images"
  in
  let term =
    Term.(
      const run $ path_arg $ census_flag $ audit_flag $ flight_arg $ prom_flag
      $ chrome_arg $ max_list_arg $ pcheck_summary_flag $ prof_flag
      $ timeline_flag)
  in
  exit (Cmd.eval (Cmd.v info term))
