(* Benchmark harness regenerating every figure of the paper's evaluation
   (§6, Figures 5a-5f and 6a-6b, plus the two in-text results and a few
   ablations).  Shapes, not absolute numbers, are the reproduction target:
   the substrate is a simulated NVM on a shared-nothing container, not a
   2x20-core Optane testbed.

     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- --only fig5a      # one figure
     dune exec bench/main.exe -- --threads 1,2,4 --scale 0.5
     dune exec bench/main.exe -- --bechamel        # per-op latency suite
     dune exec bench/main.exe -- --csv results.csv
     dune exec bench/main.exe -- --only fig5a --metrics --trace trace.json *)

let mb = 1 lsl 20

type ctx = {
  threads : int list;
  scale : float;
  csv : out_channel option;
}

let scaled ctx n = max 1 (int_of_float (float_of_int n *. ctx.scale))

let emit ctx row =
  Workloads.Harness.print_row row;
  match ctx.csv with
  | Some oc ->
    output_string oc (Workloads.Harness.row_to_csv row);
    output_char oc '\n'
  | None -> ()

(* Run one allocator benchmark over the line-up x thread sweep. *)
let sweep ctx ~figure ~title ~allocators ~heap_mb ~metric f =
  Workloads.Harness.print_header figure title;
  List.iter
    (fun threads ->
      List.iter
        (fun name ->
          let alloc = Baselines.Allocators.make name ~size:(heap_mb * mb) in
          let before = Alloc_iface.stats alloc in
          let ck_before =
            if Pmem.Check.enabled () then Some (Pmem.Check.totals ()) else None
          in
          let wl0 = Pmem.logical_bytes () and wp0 = Pmem.physical_bytes () in
          let s0 = Obs.Trace.begin_span () in
          let value, p50_ns, p99_ns =
            Workloads.Harness.with_alloc_latency (fun () -> f alloc ~threads)
          in
          Obs.Trace.span
            (Printf.sprintf "bench.%s.%s.t%d" figure name threads)
            s0;
          let after = Alloc_iface.stats alloc in
          let d = Pmem.Stats.diff after before in
          (* persistency-checker window for this row: wasted flushes as a
             fraction of all flushes, and fences that drained nothing *)
          let redundant_flush_rate, wasted_fences =
            match ck_before with
            | None -> (0., 0)
            | Some b ->
              let cd = Pmem.Check.diff (Pmem.Check.totals ()) b in
              ( (if cd.t_flushes > 0 then
                   float_of_int (Pmem.Check.wasted_flushes cd)
                   /. float_of_int cd.t_flushes
                 else 0.),
                cd.t_wasted_fences )
          in
          (* end-of-row census: worker domains have exited, so the heap is
             quiescent and occupancy/fragmentation are exact *)
          let occupancy, ext_frag =
            match Alloc_iface.frag alloc with
            | Some (o, e) -> (o, e)
            | None -> (0., 0.)
          in
          let write_amp =
            let dl = Pmem.logical_bytes () - wl0 in
            if dl = 0 then 0.
            else float_of_int (Pmem.physical_bytes () - wp0) /. float_of_int dl
          in
          emit ctx
            (Workloads.Harness.make_row ~figure ~allocator:name ~threads
               ~metric ~value ~flushes:d.flushes ~fences:d.fences ~p50_ns
               ~p99_ns ~occupancy ~ext_frag ~redundant_flush_rate
               ~wasted_fences ~write_amp ());
          Gc.full_major ())
        allocators)
    ctx.threads

let fig5a ctx =
  let p =
    {
      Workloads.Threadtest.iterations = scaled ctx 50;
      objects_per_iter = 2000;
      object_size = 64;
    }
  in
  sweep ctx ~figure:"fig5a" ~title:"Threadtest (lower is better)"
    ~allocators:Baselines.Allocators.benchmark_names ~heap_mb:64
    ~metric:"seconds" (fun alloc ~threads ->
      Workloads.Threadtest.run alloc ~threads p)

let fig5b ctx =
  let p = { Workloads.Shbench.default with iterations = scaled ctx 60_000 } in
  sweep ctx ~figure:"fig5b" ~title:"Shbench (lower is better)"
    ~allocators:Baselines.Allocators.benchmark_names ~heap_mb:64
    ~metric:"seconds" (fun alloc ~threads ->
      Workloads.Shbench.run alloc ~threads p)

let larson ctx ~figure ~title p =
  sweep ctx ~figure ~title ~allocators:Baselines.Allocators.benchmark_names
    ~heap_mb:128 ~metric:"Mops/s" (fun alloc ~threads ->
      Workloads.Larson.run alloc ~threads p)

let fig5c ctx =
  larson ctx ~figure:"fig5c" ~title:"Larson 64-400B (higher is better)"
    { Workloads.Larson.default with duration = 0.5 *. ctx.scale }

let larson_medium ctx =
  larson ctx ~figure:"larson_med"
    ~title:"Larson 64-2048B, Makalu medium-size collapse (higher is better)"
    { Workloads.Larson.medium with duration = 0.5 *. ctx.scale }

let fig5d ctx =
  let p =
    { Workloads.Prodcon.objects_total = scaled ctx 100_000; object_size = 64 }
  in
  sweep ctx ~figure:"fig5d" ~title:"Prod-con (lower is better)"
    ~allocators:Baselines.Allocators.benchmark_names ~heap_mb:128
    ~metric:"seconds" (fun alloc ~threads ->
      Workloads.Prodcon.run alloc ~threads p)

let fig5e ctx =
  let p =
    {
      Workloads.Vacation.relations = 16384;
      transactions = scaled ctx 20_000;
      queries = 5;
    }
  in
  sweep ctx ~figure:"fig5e"
    ~title:"Vacation OLTP, persistent allocators (lower is better)"
    ~allocators:Baselines.Allocators.persistent_names ~heap_mb:128
    ~metric:"seconds" (fun alloc ~threads ->
      Workloads.Vacation.run alloc ~threads p)

let memcached ctx ~figure ~title workload =
  let p =
    {
      Workloads.Memcached.records = scaled ctx 20_000;
      operations = scaled ctx 40_000;
      value_size = 100;
      workload;
    }
  in
  sweep ctx ~figure ~title ~allocators:Baselines.Allocators.benchmark_names
    ~heap_mb:128 ~metric:"Kops/s" (fun alloc ~threads ->
      Workloads.Memcached.run alloc ~threads p)

let fig5f ctx =
  memcached ctx ~figure:"fig5f" ~title:"Memcached YCSB-A 50/50 (higher is better)"
    Workloads.Ycsb.workload_a

let fig5f_read_b ctx =
  memcached ctx ~figure:"fig5f_B"
    ~title:"Memcached YCSB-B 95/5 (higher is better)" Workloads.Ycsb.workload_b

let fig6 ctx ~figure ~title structure =
  Workloads.Harness.print_header figure title;
  let sweep_blocks =
    List.map (scaled ctx) [ 20_000; 50_000; 100_000; 200_000; 400_000 ]
  in
  List.iter
    (fun blocks ->
      let r = Workloads.Recovery_bench.run structure ~blocks in
      emit ctx
        (Workloads.Harness.make_row ~figure
           ~allocator:(Workloads.Recovery_bench.structure_name structure)
           ~threads:r.reachable (* column reused: reachable blocks *)
           ~metric:"seconds" ~value:r.total_seconds ());
      Gc.full_major ())
    sweep_blocks

let fig6a ctx =
  fig6 ctx ~figure:"fig6a"
    ~title:"GC/recovery time vs reachable blocks, Treiber stack"
    Workloads.Recovery_bench.Stack

let fig6b ctx =
  fig6 ctx ~figure:"fig6b"
    ~title:"GC/recovery time vs reachable blocks, Natarajan-Mittal tree"
    Workloads.Recovery_bench.Tree

let ablation_filter ctx =
  Workloads.Harness.print_header "abl_filter"
    "Filtered vs conservative recovery GC (seconds; lower is better)";
  List.iter
    (fun (structure, use_filter) ->
      let blocks = scaled ctx 200_000 in
      let r = Workloads.Recovery_bench.run ~use_filter structure ~blocks in
      emit ctx
        (Workloads.Harness.make_row ~figure:"abl_filter"
           ~allocator:
             (Workloads.Recovery_bench.structure_name structure
             ^ if use_filter then "+filter" else "+conserv")
           ~threads:r.reachable ~metric:"seconds" ~value:r.total_seconds ());
      Gc.full_major ())
    [
      (Workloads.Recovery_bench.Stack, true);
      (Workloads.Recovery_bench.Stack, false);
      (Workloads.Recovery_bench.Tree, true);
      (Workloads.Recovery_bench.Tree, false);
      (Workloads.Recovery_bench.Fat_stack, true);
      (Workloads.Recovery_bench.Fat_stack, false);
    ]

let ablation_flush_cost ctx =
  (* the paper's central claim made visible: persistence operations per
     malloc/free pair, per allocator *)
  Workloads.Harness.print_header "abl_flush"
    "Persistence ops per malloc/free pair (1 thread)";
  let ops = scaled ctx 50_000 in
  List.iter
    (fun name ->
      let alloc = Baselines.Allocators.make name ~size:(64 * mb) in
      let warm = Alloc_iface.malloc alloc 64 in
      Alloc_iface.free alloc warm;
      let before = Alloc_iface.stats alloc in
      for _ = 1 to ops do
        let va = Alloc_iface.malloc alloc 64 in
        Alloc_iface.free alloc va
      done;
      let d = Pmem.Stats.diff (Alloc_iface.stats alloc) before in
      emit ctx
        (Workloads.Harness.make_row ~figure:"abl_flush" ~allocator:name
           ~threads:1 ~metric:"flush/pair"
           ~value:(float_of_int d.flushes /. float_of_int ops)
           ~flushes:d.flushes ~fences:d.fences ());
      Gc.full_major ())
    Baselines.Allocators.names

let ablation_expansion ctx =
  (* paper §4.4: "we did not observe significant changes in performance
     with larger or smaller expansion sizes" — check that claim *)
  Workloads.Harness.print_header "abl_expand"
    "Ralloc expansion batch size (Threadtest seconds, 2 threads)";
  let p =
    {
      Workloads.Threadtest.iterations = scaled ctx 25;
      objects_per_iter = 2000;
      object_size = 64;
    }
  in
  List.iter
    (fun expansion_sbs ->
      let heap =
        Ralloc.create ~name:"expand" ~size:(64 * mb) ~expansion_sbs ()
      in
      let module A = Baselines.Allocators.Ralloc_alloc in
      let alloc = Alloc_iface.I ((module A), heap) in
      let v = Workloads.Threadtest.run alloc ~threads:2 p in
      emit ctx
        (Workloads.Harness.make_row ~figure:"abl_expand"
           ~allocator:(Printf.sprintf "exp=%d" expansion_sbs)
           ~threads:2 ~metric:"seconds" ~value:v ());
      Gc.full_major ())
    [ 1; 4; 16; 64 ]

let ablation_parallel_recovery ctx =
  (* the paper's §6.4 future work, implemented: parallelize reconstruction
     across superblocks (on this 1-core container the interest is the
     overhead, not the speedup) *)
  Workloads.Harness.print_header "abl_par_rec"
    "Parallel recovery reconstruction (seconds; trace stays sequential)";
  List.iter
    (fun domains ->
      let blocks = scaled ctx 300_000 in
      let heap = Ralloc.create ~name:"par-rec" ~size:(blocks * 32) () in
      let s = Dstruct.Pstack.create heap ~root:0 in
      for i = 1 to blocks do
        ignore (Dstruct.Pstack.push s i)
      done;
      let heap, _ = Ralloc.crash_and_reopen heap in
      ignore (Dstruct.Pstack.attach heap ~root:0);
      let r = Ralloc.recover ~domains heap in
      emit ctx
        (Workloads.Harness.make_row ~figure:"abl_par_rec"
           ~allocator:(Printf.sprintf "domains=%d" domains)
           ~threads:r.reachable_blocks ~metric:"seconds"
           ~value:(r.trace_seconds +. r.rebuild_seconds)
           ());
      Gc.full_major ())
    [ 1; 2; 4 ]

let ablation_latency ctx =
  (* sensitivity to the NVM cost model: as flush+fence latency grows, the
     eager-flushing allocators slow down linearly while Ralloc does not —
     the mechanism behind every Fig. 5 gap.  Latencies in ns. *)
  Workloads.Harness.print_header "abl_latency"
    "Threadtest (1 thread) vs simulated flush/fence latency";
  let p =
    {
      Workloads.Threadtest.iterations = scaled ctx 25;
      objects_per_iter = 2000;
      object_size = 64;
    }
  in
  List.iter
    (fun (flush_ns, fence_ns) ->
      Pmem.set_latency ~flush_ns ~fence_ns ();
      List.iter
        (fun name ->
          let alloc = Baselines.Allocators.make name ~size:(64 * mb) in
          let v = Workloads.Threadtest.run alloc ~threads:1 p in
          emit ctx
            (Workloads.Harness.make_row ~figure:"abl_latency"
               ~allocator:(Printf.sprintf "%s@%dns" name (flush_ns + fence_ns))
               ~threads:1 ~metric:"seconds" ~value:v ());
          Gc.full_major ())
        [ "ralloc"; "makalu"; "pmdk" ])
    [ (0, 0); (50, 70); (90, 140); (200, 300); (400, 600) ];
  Pmem.set_latency ~flush_ns:90 ~fence_ns:140 ()

let ablation_pipeline ctx =
  (* the write-combining flush pipeline vs the legacy synchronous model:
     same workload, same flush/fence counts (verified by perf_smoke.exe),
     different cost.  ralloc_file additionally prices the backing-file
     path — coalesced pwrites at the fence vs one seek+write per line. *)
  Workloads.Harness.print_header "abl_pipeline"
    "Posted flushes drained at fences vs synchronous flushes (Threadtest, 1 \
     thread)";
  let saved = Pmem.current_mode () in
  let p =
    {
      Workloads.Threadtest.iterations = scaled ctx 25;
      objects_per_iter = 2000;
      object_size = 64;
    }
  in
  List.iter
    (fun (mode, tag) ->
      Pmem.set_mode mode;
      List.iter
        (fun name ->
          let alloc = Baselines.Allocators.make name ~size:(64 * mb) in
          let before = Alloc_iface.stats alloc in
          let v = Workloads.Threadtest.run alloc ~threads:1 p in
          let d = Pmem.Stats.diff (Alloc_iface.stats alloc) before in
          emit ctx
            (Workloads.Harness.make_row ~figure:"abl_pipeline"
               ~allocator:(name ^ "+" ^ tag) ~threads:1 ~metric:"seconds"
               ~value:v ~flushes:d.flushes ~fences:d.fences ());
          Gc.full_major ())
        [ "ralloc"; "ralloc_file"; "makalu"; "pmdk" ])
    [ (Pmem.Pipelined, "pipe"); (Pmem.Synchronous, "sync") ];
  Pmem.set_mode saved

let ablation_tcache ctx =
  (* thread caching is what separates LRMalloc (and hence Ralloc) from
     Michael's 2004 allocator (paper §3): same data structures, but one
     anchor CAS per op instead of a cache hit *)
  Workloads.Harness.print_header "abl_tcache"
    "Thread-cache ablation: LRMalloc vs Michael's allocator (Threadtest)";
  let p =
    {
      Workloads.Threadtest.iterations = scaled ctx 25;
      objects_per_iter = 2000;
      object_size = 64;
    }
  in
  List.iter
    (fun threads ->
      List.iter
        (fun name ->
          let alloc = Baselines.Allocators.make name ~size:(64 * mb) in
          let v = Workloads.Threadtest.run alloc ~threads p in
          emit ctx
            (Workloads.Harness.make_row ~figure:"abl_tcache" ~allocator:name
               ~threads ~metric:"seconds" ~value:v ());
          Gc.full_major ())
        [ "lrmalloc"; "michael"; "ralloc" ])
    [ 1; 2; 4 ]

(* Per-op tail latency: every malloc and free is timed individually into
   preallocated per-thread sample arrays (exact order statistics, not the
   log-linear Obs histograms — a p99/p50 ratio near 1 is exactly the claim
   a bucketed histogram cannot certify).  The working set per thread is
   2x blocks-per-superblock of the class, churned by random slot
   replacement, so the window crosses superblock boundaries and exercises
   refill and cache-flush continuously: for 4 KB blocks a refill happens
   every ~16 allocations (6% of ops — squarely inside the p99), for 64 B
   every ~1024 (visible only in max_ns).  An amortized-with-spikes fast
   path shows up as p99_p50_ratio >> 1 on the small classes and a max_ns
   hundreds of times the p50; a constant-time one keeps the ratio near 1
   and pulls max_ns toward the p99. *)
let fig_tail ctx =
  Workloads.Harness.print_header "fig_tail"
    "Per-op malloc/free latency tails (p99/p50 ratio, lower is better)";
  let ops = scaled ctx 60_000 in
  let sizes = [ 64; 4096; 14336 ] in
  List.iter
    (fun threads ->
      List.iter
        (fun name ->
          List.iter
            (fun size ->
              let alloc = Baselines.Allocators.make name ~size:(64 * mb) in
              let bps = 65536 / size in
              let slots_n = max 64 (2 * bps) in
              let msamples = Array.init threads (fun _ -> Array.make ops 0) in
              let fsamples = Array.init threads (fun _ -> Array.make ops 0) in
              let mcount = Array.make threads 0
              and fcount = Array.make threads 0 in
              ignore
                (Workloads.Harness.time_parallel ~threads (fun tid ->
                     let rng = Workloads.Harness.Rng.make (tid + 1) in
                     let slots = Array.make slots_n 0 in
                     let ms = msamples.(tid) and fs = fsamples.(tid) in
                     let mi = ref 0 and fi = ref 0 in
                     for _ = 1 to ops do
                       let s = Workloads.Harness.Rng.below rng slots_n in
                       if slots.(s) = 0 then begin
                         let t0 = Obs.now_ns () in
                         let va = Alloc_iface.malloc alloc size in
                         ms.(!mi) <- Obs.now_ns () - t0;
                         incr mi;
                         slots.(s) <- va
                       end
                       else begin
                         let t0 = Obs.now_ns () in
                         Alloc_iface.free alloc slots.(s);
                         fs.(!fi) <- Obs.now_ns () - t0;
                         incr fi;
                         slots.(s) <- 0
                       end
                     done;
                     mcount.(tid) <- !mi;
                     fcount.(tid) <- !fi;
                     Alloc_iface.thread_exit alloc));
              let emit_kind kind samples counts =
                let total = Array.fold_left ( + ) 0 counts in
                let all = Array.make total 0 in
                let off = ref 0 in
                Array.iteri
                  (fun tid n ->
                    Array.blit samples.(tid) 0 all !off n;
                    off := !off + n)
                  counts;
                Array.sort compare all;
                let pct q =
                  float_of_int all.(int_of_float (q *. float_of_int (total - 1)))
                in
                let p50 = pct 0.5 and p99 = pct 0.99 in
                emit ctx
                  (Workloads.Harness.make_row ~figure:"fig_tail"
                     ~allocator:(Printf.sprintf "%s@%d/%s" name size kind)
                     ~threads ~metric:"p99/p50"
                     ~value:(if p50 > 0. then p99 /. p50 else 0.)
                     ~p50_ns:p50 ~p99_ns:p99
                     ~max_ns:(float_of_int all.(total - 1))
                     ())
              in
              emit_kind "m" msamples mcount;
              emit_kind "f" fsamples fcount;
              Gc.full_major ())
            sizes)
        [ "ralloc"; "lrmalloc"; "makalu"; "pmdk" ])
    ctx.threads

let bench_server ctx =
  (* group-commit amortization made measurable: an in-process pkvd serving
     pipelined client connections over a Unix socket, swept over worker
     count x batch size.  Each client keeps a window of requests in flight
     so batches actually fill; keys are disjoint per client (pure inserts,
     no replace traffic) so the fences/op column isolates the commit fence:
     ~1 ordering fence per SET plus 1/batch commit fences — the CSV should
     show fences/op decreasing monotonically toward 1 as --batch grows. *)
  Workloads.Harness.print_header "server"
    "pkvd group commit: Kops/s and fences/op vs workers x batch";
  let dir = Filename.temp_file "pkvd-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let total_ops = scaled ctx 8_000 in
  let conns = 8 and window = 64 in
  let ack_hist = Obs.Histogram.make "server.ack_ns" in
  List.iter
    (fun workers ->
      List.iter
        (fun batch ->
          let tag = Printf.sprintf "w%d-b%d" workers batch in
          let heap_path = Filename.concat dir tag in
          let sock = heap_path ^ ".sock" in
          let config =
            {
              (Server.Core.default_config ~heap_path ()) with
              workers;
              batch;
              batch_usec = 2_000;
              queue_cap = 1_024;
            }
          in
          let srv = Server.Core.start ~config (Unix.ADDR_UNIX sock) in
          let st = Server.Core.store srv in
          let before = Ralloc.stats st.heap in
          let ack_before = Obs.Histogram.snapshot ack_hist in
          let wl0 = Pmem.logical_bytes () and wp0 = Pmem.physical_bytes () in
          (* request-span attribution: diff the write-class stage-sum
             counters across the row so each row reports what share of a
             SET's life was the (amortized) commit fence vs the batch-fill
             park — the fence share must shrink as --batch grows *)
          let stage_idx name =
            let i = ref (-1) in
            Array.iteri
              (fun j s -> if s = name then i := j)
              Server.Rtrace.stages;
            !i
          in
          let st_fence = stage_idx "fence" and st_park = stage_idx "park" in
          let fence0 = Server.Rtrace.sum_ns `Write st_fence
          and park0 = Server.Rtrace.sum_ns `Write st_park
          and tot0 = Server.Rtrace.total_sum_ns `Write in
          let acked_total = Atomic.make 0 in
          let per_conn = (total_ops + conns - 1) / conns in
          let client cid =
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX sock);
            let next_key = ref (cid * 10_000_000) in
            let acked = ref 0 in
            while !acked < per_conn do
              let w = min window (per_conn - !acked) in
              for _ = 1 to w do
                Server.Proto.write_frame fd
                  (Server.Proto.encode_request
                     (Server.Proto.Set (!next_key, !next_key)));
                incr next_key
              done;
              for _ = 1 to w do
                match Server.Proto.read_frame fd with
                | Some p -> (
                  match Server.Proto.decode_response p with
                  | Ok Server.Proto.Ok -> incr acked
                  | Ok Server.Proto.Busy -> () (* dropped; key skipped *)
                  | _ -> failwith "bench server: unexpected reply")
                | None -> failwith "bench server: connection closed"
              done
            done;
            Unix.close fd;
            Atomic.fetch_and_add acked_total !acked |> ignore
          in
          let t0 = Unix.gettimeofday () in
          let threads = List.init conns (fun c -> Thread.create client c) in
          List.iter Thread.join threads;
          let dt = Unix.gettimeofday () -. t0 in
          let d = Pmem.Stats.diff (Ralloc.stats st.heap) before in
          let ad =
            Obs.Histogram.diff (Obs.Histogram.snapshot ack_hist) ack_before
          in
          let acked = Atomic.get acked_total in
          Server.Core.stop srv;
          emit ctx
            (Workloads.Harness.make_row ~figure:"server" ~allocator:tag
               ~threads:workers ~metric:"Kops/s"
               ~value:(float_of_int acked /. dt /. 1_000.)
               ~flushes:d.flushes ~fences:d.fences
               ~p50_ns:(float_of_int (Obs.Histogram.snap_quantile ad 0.5))
               ~p99_ns:(float_of_int (Obs.Histogram.snap_quantile ad 0.99))
               ~fences_per_op:(float_of_int d.fences /. float_of_int acked)
               ~write_amp:
                 (let dl = Pmem.logical_bytes () - wl0 in
                  if dl = 0 then 0.
                  else
                    float_of_int (Pmem.physical_bytes () - wp0)
                    /. float_of_int dl)
               ());
          let dtot = Server.Rtrace.total_sum_ns `Write - tot0 in
          if dtot > 0 && acked > 0 then
            Printf.printf
              "             %-10s fence/op=%6.0fns park/op=%9.0fns \
               fence-share=%5.2f%% park-share=%5.2f%%\n%!"
              tag
              (float_of_int (Server.Rtrace.sum_ns `Write st_fence - fence0)
              /. float_of_int acked)
              (float_of_int (Server.Rtrace.sum_ns `Write st_park - park0)
              /. float_of_int acked)
              (100. *. float_of_int (Server.Rtrace.sum_ns `Write st_fence - fence0)
              /. float_of_int dtot)
              (100. *. float_of_int (Server.Rtrace.sum_ns `Write st_park - park0)
              /. float_of_int dtot);
          List.iter
            (fun ext ->
              try Sys.remove (heap_path ^ ext) with Sys_error _ -> ())
            [ ".sb"; ".meta"; ".desc" ];
          Gc.full_major ())
        [ 1; 4; 16; 64 ])
    [ 1; 2; 4 ];
  (* cumulative p99 attribution over the whole sweep *)
  Server.Rtrace.report Format.std_formatter;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let bench_server_scale ctx =
  (* Connection-scaling series for the event-driven server: does a fixed
     worker/loop pool hold throughput and the amortized-fence result as
     the connection count crosses the old 128-thread ceiling?  Sweep
     connections x batch with every connection holding exactly one
     request in flight — the adversarial shape for group commit, because
     batches only fill if the event loops can pump enough sockets per
     wake.  Keys are disjoint per connection (pure inserts), so the
     fences/op column isolates the commit fence exactly like the
     `server` figure: ~1 ordering fence per SET plus 1/batch commit
     fences, and the column must stay flat as connections grow.

     The flush/fence columns count the persistence *protocol* only: the
     flight recorder durably logs every malloc/free at exactly 2 flushes
     + 1 fence per event (see Obs.Flight.record), and that telemetry
     cost — measured precisely by the ring's event counter — is deducted
     so the row reports what the commit path itself pays.  The deduction
     is printed once per sweep so nothing is silently dropped. *)
  Workloads.Harness.print_header "server_scale"
    "pkvd event loops: Kops/s and fences/op vs connections x batch";
  let dir = Filename.temp_file "pkvd-scale" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let total_ops = scaled ctx 60_000 in
  let ack_hist = Obs.Histogram.make "server.ack_ns" in
  let conn_counts =
    List.filter (fun c -> c <= total_ops) [ 16; 64; 256; 1024; 4096 ]
  in
  List.iter
    (fun conns ->
      List.iter
        (fun batch ->
          let tag = Printf.sprintf "c%d-b%d" conns batch in
          let heap_path = Filename.concat dir tag in
          let sock = heap_path ^ ".sock" in
          let config =
            {
              (Server.Core.default_config ~heap_path ()) with
              workers = 2;
              loops = 2;
              max_conns = conns + 64;
              batch;
              batch_usec = 2_000;
              queue_cap = 4_096;
            }
          in
          let srv = Server.Core.start ~config (Unix.ADDR_UNIX sock) in
          let st = Server.Core.store srv in
          let flight_events () =
            match Ralloc.flight st.heap with
            | Some f -> Obs.Flight.total_recorded f
            | None -> 0
          in
          let before = Ralloc.stats st.heap in
          let fl0 = flight_events () in
          let ack_before = Obs.Histogram.snapshot ack_hist in
          let wl0 = Pmem.logical_bytes () and wp0 = Pmem.physical_bytes () in
          let acked_total = Atomic.make 0 in
          (* a handful of driver threads each own a slab of sockets and
             run window-1 rounds: send one SET on every owned socket,
             then read one response from each — [conns] requests in
             flight with [drivers] threads, not [conns] threads *)
          let drivers = min 8 conns in
          let per_driver = conns / drivers in
          let per_sock = max 1 (total_ops / conns) in
          let driver d =
            let fds =
              Array.init per_driver (fun _ ->
                  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                  let rec go n =
                    match Unix.connect fd (Unix.ADDR_UNIX sock) with
                    | () -> ()
                    | exception
                        Unix.Unix_error
                          ((Unix.ECONNREFUSED | Unix.EAGAIN), _, _)
                      when n > 0 ->
                      Unix.sleepf 0.01;
                      go (n - 1)
                  in
                  go 100;
                  fd)
            in
            let acked = ref 0 in
            let key = ref (d * 50_000_000) in
            for _ = 1 to per_sock do
              Array.iter
                (fun fd ->
                  Server.Proto.write_frame fd
                    (Server.Proto.encode_request
                       (Server.Proto.Set (!key, !key)));
                  incr key)
                fds;
              Array.iter
                (fun fd ->
                  match Server.Proto.read_frame fd with
                  | Some p -> (
                    match Server.Proto.decode_response p with
                    | Ok Server.Proto.Ok -> incr acked
                    | Ok Server.Proto.Busy -> () (* dropped; key skipped *)
                    | _ -> failwith "server_scale: unexpected reply")
                  | None -> failwith "server_scale: connection closed")
                fds
            done;
            Array.iter Unix.close fds;
            Atomic.fetch_and_add acked_total !acked |> ignore
          in
          let t0 = Unix.gettimeofday () in
          let threads = List.init drivers (fun d -> Thread.create driver d) in
          List.iter Thread.join threads;
          let dt = Unix.gettimeofday () -. t0 in
          let d = Pmem.Stats.diff (Ralloc.stats st.heap) before in
          let fl = flight_events () - fl0 in
          let flushes = max 0 (d.flushes - (2 * fl))
          and fences = max 0 (d.fences - fl) in
          let ad =
            Obs.Histogram.diff (Obs.Histogram.snapshot ack_hist) ack_before
          in
          let acked = Atomic.get acked_total in
          Server.Core.stop srv;
          emit ctx
            (Workloads.Harness.make_row ~figure:"server_scale" ~allocator:tag
               ~threads:conns ~metric:"Kops/s"
               ~value:(float_of_int acked /. dt /. 1_000.)
               ~flushes ~fences
               ~p50_ns:(float_of_int (Obs.Histogram.snap_quantile ad 0.5))
               ~p99_ns:(float_of_int (Obs.Histogram.snap_quantile ad 0.99))
               ~fences_per_op:(float_of_int fences /. float_of_int (max 1 acked))
               ~write_amp:
                 (let dl = Pmem.logical_bytes () - wl0 in
                  if dl = 0 then 0.
                  else
                    float_of_int (Pmem.physical_bytes () - wp0)
                    /. float_of_int dl)
               ());
          if fl > 0 then
            Printf.printf
              "             %-10s flight ring: %d events deducted (%d \
               flushes, %d fences of telemetry)\n%!"
              tag fl (2 * fl) fl;
          List.iter
            (fun ext ->
              try Sys.remove (heap_path ^ ext) with Sys_error _ -> ())
            [ ".sb"; ".meta"; ".desc" ];
          Gc.full_major ())
        [ 16; 64 ])
    conn_counts;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let figures =
  [
    ("fig5a", fig5a);
    ("fig5b", fig5b);
    ("fig5c", fig5c);
    ("fig5d", fig5d);
    ("fig5e", fig5e);
    ("fig5f", fig5f);
    ("fig5f_B", fig5f_read_b);
    ("larson_med", larson_medium);
    ("fig6a", fig6a);
    ("fig6b", fig6b);
    ("abl_filter", ablation_filter);
    ("abl_flush", ablation_flush_cost);
    ("abl_expand", ablation_expansion);
    ("abl_par_rec", ablation_parallel_recovery);
    ("abl_latency", ablation_latency);
    ("abl_tcache", ablation_tcache);
    ("abl_pipeline", ablation_pipeline);
    ("fig_tail", fig_tail);
    ("server", bench_server);
    ("server_scale", bench_server_scale);
  ]

(* ------------------------- Bechamel micro-suite ------------------------- *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let mk_sized name size =
    let alloc = Baselines.Allocators.make name ~size:(64 * mb) in
    Test.make ~name:(Printf.sprintf "%s/malloc-free-%dB" name size)
      (Staged.stage (fun () ->
           let va = Alloc_iface.malloc alloc size in
           Alloc_iface.free alloc va))
  in
  let tests =
    Test.make_grouped ~name:"per-op"
      (List.map (fun n -> mk_sized n 64) Baselines.Allocators.names
      @ List.concat_map
          (fun s -> [ mk_sized "ralloc" s; mk_sized "makalu" s ])
          [ 400; 4096 ])
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let res = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        match Analyze.OLS.estimates o with
        | Some (t :: _) -> (name, t) :: acc
        | _ -> acc)
      res []
  in
  Printf.printf "\n== bechamel: single-thread per-op latency ==\n";
  List.iter
    (fun (name, ns) -> Printf.printf "%-36s %10.1f ns/op\n" name ns)
    (List.sort compare rows)

(* ------------------------- CLI ------------------------- *)

(* Periodic monitor: every [interval] seconds snapshot the standard
   black-box series (the same [Ralloc.tsdb_global_sources] snapshot path
   the server's sampler persists) into a private in-memory Tsdb ring,
   plus windowed latency percentiles — not lifetime averages — so phase
   changes (provisioning bursts, retire storms) are visible as they
   happen.  Lines carry a [metrics] prefix to keep them grep-able out of
   the row stream. *)
let start_metrics_ticker interval =
  Obs.set_enabled true;
  Obs.Tsdb.set_enabled true;
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let t0 = Unix.gettimeofday () in
        (* volatile backing: the bench has no one heap to persist into,
           but recording through a real Tsdb keeps this path and the
           server's sampler byte-for-byte the same code *)
        let words = Obs.Tsdb.words_for () in
        let region = Pmem.create ~size_bytes:(words * 8) () in
        let db =
          Obs.Tsdb.format (Pmem.flight_backend region ~first_word:0 ~words)
        in
        (* windowed (not lifetime) latency percentile source: each call
           diffs the histogram against the previous tick's snapshot *)
        let windowed_q q =
          let last = ref (Obs.Histogram.snapshot Alloc_iface.malloc_ns) in
          fun _dt ->
            let s = Obs.Histogram.snapshot Alloc_iface.malloc_ns in
            let d = Obs.Histogram.diff s !last in
            last := s;
            Obs.Histogram.snap_quantile d q
        in
        let sources =
          Ralloc.tsdb_global_sources ()
          @ [
              ("alloc.malloc_p50_ns", windowed_q 0.5);
              ("alloc.malloc_p99_ns", windowed_q 0.99);
            ]
        in
        let sampler = Obs.Tsdb.Sampler.create db sources in
        let idx name =
          match Obs.Tsdb.Sampler.index sampler name with
          | Some i -> i
          | None -> invalid_arg ("metrics ticker: unknown series " ^ name)
        in
        let i_malloc = idx "alloc.mallocs_s"
        and i_free = idx "alloc.frees_s"
        and i_p50 = idx "alloc.malloc_p50_ns"
        and i_p99 = idx "alloc.malloc_p99_ns"
        and i_flush = idx "pmem.flush_per_kop"
        and i_fence = idx "pmem.fence_per_kop"
        and i_wamp = idx "pmem.write_amp_milli" in
        while not (Atomic.get stop) do
          Unix.sleepf interval;
          let v = Obs.Tsdb.Sampler.tick sampler in
          if Array.length v > 0 then
            Printf.printf
              "[metrics] t=%6.1fs malloc %7.1f K/s free %7.1f K/s p50=%dns \
               p99=%dns | flush/kop %d fence/kop %d wamp=%.3f\n\
               %!"
              (Unix.gettimeofday () -. t0)
              (float_of_int v.(i_malloc) /. 1000.)
              (float_of_int v.(i_free) /. 1000.)
              v.(i_p50) v.(i_p99) v.(i_flush) v.(i_fence)
              (float_of_int v.(i_wamp) /. 1000.)
        done)
  in
  fun () ->
    Atomic.set stop true;
    Domain.join d

let run_bench only threads scale csv_path bechamel metrics metrics_interval
    trace_path pmem_mode pcheck prof_path prof_rate =
  Pmem.set_mode pmem_mode;
  if pcheck then Pmem.Check.set_enabled true;
  if metrics then Obs.set_enabled true;
  if prof_path <> None then begin
    Obs.Prof.set_rate prof_rate;
    Obs.Prof.set_enabled true
  end;
  let stop_ticker =
    Option.map start_metrics_ticker metrics_interval
  in
  (* fail on an unwritable trace path now, not after the whole sweep *)
  Option.iter
    (fun path ->
      (match open_out path with
      | oc -> close_out oc
      | exception Sys_error msg ->
        Printf.eprintf "ralloc-bench: cannot write trace file: %s\n" msg;
        exit 1);
      Obs.Trace.set_enabled true)
    trace_path;
  let csv =
    Option.map
      (fun path ->
        let oc = open_out path in
        output_string oc Workloads.Harness.csv_header;
        output_char oc '\n';
        oc)
      csv_path
  in
  let ctx = { threads; scale; csv } in
  (* untimed warmup: the very first rows otherwise pay one-off process
     costs (page-fault machinery, lazy code paths) *)
  let warm = Baselines.Allocators.make "ralloc" ~size:(8 * mb) in
  ignore
    (Workloads.Threadtest.run warm ~threads:1
       { iterations = 2; objects_per_iter = 1000; object_size = 64 });
  Gc.full_major ();
  let selected =
    match only with
    | [] -> figures
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n figures with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown figure %s (known: %s)\n" n
              (String.concat ", " (List.map fst figures));
            exit 2)
        names
  in
  if bechamel then bechamel_suite ()
  else List.iter (fun (_, f) -> f ctx) selected;
  Option.iter (fun stop -> stop ()) stop_ticker;
  Option.iter close_out csv;
  if metrics then begin
    Format.printf "@.== obs: metrics dump ==@.";
    Obs.dump Format.std_formatter
  end;
  if pcheck then begin
    Format.printf "@.== pcheck: persistency checker ==@.";
    Pmem.Check.report Format.std_formatter;
    Pmem.Check.trace_report ()
  end;
  Option.iter
    (fun path ->
      Obs.Trace.write_chrome_trace path;
      Printf.printf
        "\ntrace: wrote %s (load in chrome://tracing or ui.perfetto.dev)\n"
        path)
    trace_path;
  (* heap profile export, format by extension: .collapsed feeds flamegraph
     scripts, .json is speedscope, anything else gets the text table *)
  Option.iter
    (fun path ->
      (match Filename.extension path with
      | ".collapsed" | ".folded" ->
        let buf = Buffer.create 4096 in
        Obs.Prof.collapsed buf;
        let oc = open_out path in
        Buffer.output_buffer oc buf;
        close_out oc
      | ".json" ->
        let buf = Buffer.create 4096 in
        Obs.Prof.speedscope buf;
        let oc = open_out path in
        Buffer.output_buffer oc buf;
        close_out oc
      | _ ->
        let oc = open_out path in
        let ppf = Format.formatter_of_out_channel oc in
        Obs.Prof.report ppf;
        Format.pp_print_flush ppf ();
        close_out oc);
      Printf.printf "prof: wrote %s (%d samples, %d sites)\n" path
        (Obs.Prof.samples ()) (Obs.Prof.site_count ()))
    prof_path

let () =
  let open Cmdliner in
  let only =
    Arg.(
      value
      & opt (list string) []
      & info [ "only" ] ~docv:"FIG,..."
          ~doc:"Run only the listed figures (e.g. fig5a,fig6b).")
  in
  let threads =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "threads" ] ~docv:"N,..." ~doc:"Thread counts to sweep.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ]
          ~doc:"Scale factor on iteration counts (0.1 = fast smoke run).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH" ~doc:"Also write rows as CSV.")
  in
  let bechamel =
    Arg.(
      value & flag
      & info [ "bechamel" ] ~doc:"Run the Bechamel per-op latency suite.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Enable the Obs telemetry registry (per-size-class counts, \
             tcache hit rate, latency percentiles) and print a dump after \
             the run.  Adds per-row p50/p99 malloc latency columns.")
  in
  let metrics_interval =
    Arg.(
      value
      & opt (some float) None
      & info [ "metrics-interval" ] ~docv:"SECONDS"
          ~doc:
            "Print a [metrics] line every $(docv) seconds: windowed \
             allocation and flush/fence rates with per-interval latency \
             percentiles (snapshot diffs, not lifetime averages).  Implies \
             the Obs registry is enabled.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Enable event tracing and write a Chrome trace_event JSON file \
             (viewable in chrome://tracing or Perfetto) at PATH.")
  in
  let pmem_mode =
    Arg.(
      value
      & opt
          (enum [ ("pipelined", Pmem.Pipelined); ("sync", Pmem.Synchronous) ])
          Pmem.Pipelined
      & info [ "pmem-mode" ] ~docv:"MODE"
          ~doc:
            "Persistence cost model: $(b,pipelined) (posted flushes drained \
             at fences, the default) or $(b,sync) (legacy per-line \
             synchronous flushes).  Flush/fence counts are identical in \
             both modes.")
  in
  let pcheck =
    Arg.(
      value & flag
      & info [ "pcheck" ]
          ~doc:
            "Enable the persistency-order checker ($(b,Pmem.Check)): per-row \
             $(b,redundant_flush_rate) and $(b,wasted_fences) columns, and a \
             per-site flush/fence waste report after the run.  Equivalent to \
             setting $(b,PCHECK=1).")
  in
  let prof =
    Arg.(
      value
      & opt (some string) None
      & info [ "prof" ] ~docv:"PATH"
          ~doc:
            "Enable the sampling heap profiler for the run and write the \
             allocation-site profile to $(docv): flamegraph collapsed-stack \
             text for $(b,.collapsed)/$(b,.folded), speedscope JSON for \
             $(b,.json), a plain text table otherwise.")
  in
  let prof_rate =
    Arg.(
      value
      & opt int Obs.Prof.default_rate
      & info [ "prof-rate" ] ~docv:"BYTES"
          ~doc:"Profiler sampling rate: roughly one sample per $(docv) \
                allocated bytes.")
  in
  let term =
    Term.(
      const run_bench $ only $ threads $ scale $ csv $ bechamel $ metrics
      $ metrics_interval $ trace $ pmem_mode $ pcheck $ prof $ prof_rate)
  in
  let info =
    Cmd.info "ralloc-bench"
      ~doc:"Regenerate the figures of the Ralloc paper's evaluation"
  in
  exit (Cmd.eval (Cmd.v info term))
