(* Mode-invariance smoke: the paper's flush-accounting thesis (abl_flush,
   the Fig. 5 flush/fence columns) must not depend on the persistence cost
   model.  Run a small fixed workload under the pipelined and synchronous
   models for every allocator and fail if the flush or fence counts differ
   by even one — a drift here means the pipeline changed *what* is
   persisted, not just when it is paid for. *)

let mb = 1 lsl 20

let () =
  let p =
    { Workloads.Threadtest.iterations = 2; objects_per_iter = 500; object_size = 64 }
  in
  let counts mode name =
    Pmem.set_mode mode;
    let alloc = Baselines.Allocators.make name ~size:(16 * mb) in
    let before = Alloc_iface.stats alloc in
    ignore (Workloads.Threadtest.run alloc ~threads:1 p);
    let d = Pmem.Stats.diff (Alloc_iface.stats alloc) before in
    (d.flushes, d.fences)
  in
  let failed = ref false in
  List.iter
    (fun name ->
      let pf, pfe = counts Pmem.Pipelined name in
      let sf, sfe = counts Pmem.Synchronous name in
      Printf.printf
        "%-12s pipelined: flushes=%-8d fences=%-8d  sync: flushes=%-8d \
         fences=%-8d%s\n"
        name pf pfe sf sfe
        (if pf <> sf || pfe <> sfe then "  <-- MODE-DEPENDENT" else "");
      if pf <> sf || pfe <> sfe then failed := true)
    Baselines.Allocators.names;
  Pmem.set_mode Pmem.Pipelined;
  if !failed then begin
    prerr_endline
      "perf_smoke: flush/fence counts differ between pmem modes; the \
       flush-accounting tables are no longer mode-invariant";
    exit 1
  end;
  print_endline "perf_smoke: flush/fence counts are mode-invariant";

  (* Flight-recorder cost accounting.  The recorder's contract: exactly 2
     flushes + 1 fence per recorded event, identical in both pmem modes,
     and exactly 0 of each while disabled — including when disabling comes
     from the OBS_DISABLED environment override rather than the flag. *)
  let flight_counts mode ~record =
    Pmem.set_mode mode;
    Obs.Flight.set_enabled record;
    let heap = Ralloc.create ~name:"flight-smoke" ~size:(16 * mb) () in
    let ev0 =
      match Ralloc.flight heap with
      | Some f -> Obs.Flight.total_recorded f
      | None -> 0
    in
    let before = Ralloc.stats heap in
    for _ = 1 to 1000 do
      let va = Ralloc.malloc heap 64 in
      Ralloc.free heap va
    done;
    let d = Pmem.Stats.diff (Ralloc.stats heap) before in
    let events =
      (match Ralloc.flight heap with
      | Some f -> Obs.Flight.total_recorded f
      | None -> 0)
      - ev0
    in
    Obs.Flight.set_enabled false;
    (d.flushes, d.fences, events)
  in
  let check what cond =
    Printf.printf "%-52s %s\n" what (if cond then "ok" else "FAIL");
    if not cond then failed := true
  in
  let off_f, off_fe, off_ev = flight_counts Pmem.Pipelined ~record:false in
  let on_f, on_fe, on_ev = flight_counts Pmem.Pipelined ~record:true in
  let son_f, son_fe, son_ev = flight_counts Pmem.Synchronous ~record:true in
  check "flight disabled records nothing" (off_ev = 0);
  check "flight enabled records the workload" (on_ev > 0);
  check
    (Printf.sprintf "flight cost is 2 flushes/event (%d events)" on_ev)
    (on_f - off_f = 2 * on_ev);
  check "flight cost is 1 fence/event" (on_fe - off_fe = on_ev);
  check "flight counts are mode-invariant"
    (son_f = on_f && son_fe = on_fe && son_ev = on_ev);
  Unix.putenv "OBS_DISABLED" "1";
  let env_f, env_fe, env_ev = flight_counts Pmem.Pipelined ~record:true in
  check "OBS_DISABLED forces the recorder off" (not (Obs.Flight.enabled ()));
  check "OBS_DISABLED run records nothing" (env_ev = 0);
  check "OBS_DISABLED run adds no flushes or fences"
    (env_f = off_f && env_fe = off_fe);
  Unix.putenv "OBS_DISABLED" "0";
  Pmem.set_mode Pmem.Pipelined;
  if !failed then begin
    prerr_endline
      "perf_smoke: flight-recorder cost accounting violated its contract";
    exit 1
  end;
  print_endline "perf_smoke: flight recorder is 2F+1F/event, mode-invariant, \
                 free when off";

  (* Persistency-checker zero-cost contract.  The checker is compiled into
     every pmem primitive; while disabled it must be invisible: identical
     flush/fence counts, zero tallies, no shadow allocation.  While enabled
     it is observational only — the counts must STILL be identical, since
     the hooks never add or absorb a persistence op.  Wall time cannot be
     asserted byte-identical between two process runs, so it is printed
     for eyeballing; the byte-identical claim is carried by the counts. *)
  let pcheck_counts ~enabled =
    Pmem.Check.set_enabled enabled;
    let alloc = Baselines.Allocators.make "ralloc" ~size:(16 * mb) in
    let before = Alloc_iface.stats alloc in
    let ck0 = Pmem.Check.totals () in
    let t0 = Unix.gettimeofday () in
    ignore (Workloads.Threadtest.run alloc ~threads:1 p);
    let dt = Unix.gettimeofday () -. t0 in
    let d = Pmem.Stats.diff (Alloc_iface.stats alloc) before in
    let ckd = Pmem.Check.diff (Pmem.Check.totals ()) ck0 in
    Pmem.Check.set_enabled false;
    (d.flushes, d.fences, dt, ckd)
  in
  Pmem.Check.reset ();
  let dis_f, dis_fe, dis_t, dis_ckd = pcheck_counts ~enabled:false in
  let en_f, en_fe, en_t, en_ckd = pcheck_counts ~enabled:true in
  check "pcheck disabled leaves all tallies at zero"
    (dis_ckd.t_flushes = 0 && dis_ckd.t_fences = 0
    && Pmem.Check.wasted_flushes dis_ckd = 0
    && dis_ckd.t_wasted_fences = 0
    && dis_ckd.t_violations = 0);
  check "pcheck flush counts identical enabled vs disabled" (en_f = dis_f);
  check "pcheck fence counts identical enabled vs disabled" (en_fe = dis_fe);
  check "pcheck enabled observes the workload's flushes"
    (en_ckd.t_flushes > 0 && en_ckd.t_fences > 0);
  check "pcheck observes every flush and fence exactly once"
    (en_ckd.t_flushes = en_f && en_ckd.t_fences = en_fe);
  Printf.printf
    "pcheck wall time: disabled %.4fs, enabled %.4fs (informational)\n" dis_t
    en_t;
  if !failed then begin
    prerr_endline "perf_smoke: persistency checker violated its cost contract";
    exit 1
  end;
  print_endline
    "perf_smoke: persistency checker is count-transparent and free when off";

  (* Span instrumentation cost contract.  The request-span hooks compiled
     into Pmem.flush/fence and Ralloc.malloc/free only *time* the
     primitives — they must never add or absorb a flush or fence, so the
     counts (and the persistency checker's observation stream) must be
     byte-identical with spans on and off.  And like every obs toggle,
     OBS_DISABLED must hold spans off even against set_enabled true. *)
  let span_counts ~spans =
    Obs.Span.set_enabled spans;
    Pmem.Check.set_enabled true;
    let heap = Ralloc.create ~name:"span-smoke" ~size:(16 * mb) () in
    let before = Ralloc.stats heap in
    let ck0 = Pmem.Check.totals () in
    for _ = 1 to 2000 do
      let va = Ralloc.malloc heap 64 in
      Ralloc.free heap va
    done;
    let d = Pmem.Stats.diff (Ralloc.stats heap) before in
    let ckd = Pmem.Check.diff (Pmem.Check.totals ()) ck0 in
    Pmem.Check.set_enabled false;
    Obs.Span.set_enabled false;
    (d.flushes, d.fences, ckd)
  in
  let sp_off_f, sp_off_fe, sp_off_ck = span_counts ~spans:false in
  let sp_on_f, sp_on_fe, sp_on_ck = span_counts ~spans:true in
  check "span hooks add no flushes"
    (sp_on_f = sp_off_f);
  check "span hooks add no fences" (sp_on_fe = sp_off_fe);
  check "pcheck stream identical with spans on vs off"
    (sp_on_ck.t_flushes = sp_off_ck.t_flushes
    && sp_on_ck.t_fences = sp_off_ck.t_fences
    && sp_on_ck.t_violations = sp_off_ck.t_violations);
  Unix.putenv "OBS_DISABLED" "1";
  Obs.Span.set_enabled true;
  check "OBS_DISABLED holds spans off against set_enabled true"
    (not (Obs.Span.enabled ()) && not (Obs.Span.on ()));
  Unix.putenv "OBS_DISABLED" "0";
  if !failed then begin
    prerr_endline "perf_smoke: span instrumentation violated its cost contract";
    exit 1
  end;
  print_endline
    "perf_smoke: span instrumentation is count-transparent and free when off";

  (* Tail-latency contract (fig_tail's CI teeth).  The constant-time fast
     path keeps ralloc's malloc/free p99 close to the p50 even for the
     14336 B class, whose 4-block-per-superblock geometry forces a refill
     or an eviction every couple of operations: with the eager per-block
     refill/flush this replaced, the p99/p50 ratio sat near 26-31x there;
     lazy adoption and per-superblock splicing hold it near 8-11x.  The
     thresholds sit between the two regimes with margin for CI noise, so
     a regression to O(blocks) refills or per-block cache flushes trips
     them.  Percentiles are exact, from raw per-op samples — the
     log-linear Obs histograms are too coarse to certify ratios this
     small.  The checker rides along on the same window to re-assert the
     zero-waste result: the whole churn, slow paths included, must issue
     no redundant flush and drain no empty fence. *)
  let pct sorted q =
    sorted.(int_of_float (q *. float_of_int (Array.length sorted - 1)))
  in
  let tail_ratios size ops =
    Gc.full_major ();
    Pmem.Check.reset ();
    Pmem.Check.set_enabled true;
    let heap = Ralloc.create ~name:"tail-smoke" ~size:(64 * mb) () in
    let ck0 = Pmem.Check.totals () in
    let slots = Array.make 64 0 in
    let ms = Array.make ops 0 and fs = Array.make ops 0 in
    let mn = ref 0 and fn = ref 0 in
    let rng = Workloads.Harness.Rng.make 42 in
    for _ = 1 to ops do
      let i = Workloads.Harness.Rng.below rng 64 in
      if slots.(i) = 0 then begin
        let t0 = Obs.now_ns () in
        let va = Ralloc.malloc heap size in
        ms.(!mn) <- Obs.now_ns () - t0;
        incr mn;
        slots.(i) <- va
      end
      else begin
        let t0 = Obs.now_ns () in
        Ralloc.free heap slots.(i);
        fs.(!fn) <- Obs.now_ns () - t0;
        incr fn;
        slots.(i) <- 0
      end
    done;
    let ckd = Pmem.Check.diff (Pmem.Check.totals ()) ck0 in
    Pmem.Check.set_enabled false;
    let ratio samples n =
      let a = Array.sub samples 0 n in
      Array.sort compare a;
      float_of_int (max 1 (pct a 0.99)) /. float_of_int (max 1 (pct a 0.5))
    in
    (ratio ms !mn, ratio fs !fn, ckd)
  in
  let m64, f64, ck64 = tail_ratios 64 40_000 in
  let m14k, f14k, ck14k = tail_ratios 14336 40_000 in
  Printf.printf
    "ralloc malloc/free p99_p50_ratio: 64 B %.1fx/%.1fx, 14336 B %.1fx/%.1fx\n"
    m64 f64 m14k f14k;
  check "64 B malloc tail under 10x" (m64 < 10.);
  check "64 B free tail under 12x" (f64 < 12.);
  check "14336 B malloc tail under 18x (eager refill sat at ~30x)"
    (m14k < 18.);
  check "14336 B free tail under 18x (per-block flush sat at ~27x)"
    (f14k < 18.);
  let zero_waste ckd =
    Pmem.Check.wasted_flushes ckd = 0
    && ckd.Pmem.Check.t_wasted_fences = 0
    && ckd.Pmem.Check.t_violations = 0
  in
  check "64 B churn wastes no flush or fence" (zero_waste ck64);
  check "14336 B churn wastes no flush or fence" (zero_waste ck14k);
  if !failed then begin
    prerr_endline
      "perf_smoke: allocator tail-latency contract violated (fast path is \
       no longer constant-time, or a slow path wastes persistence ops)";
    exit 1
  end;
  print_endline
    "perf_smoke: allocator tails are flat and the churn is zero-waste";

  (* Heap-profiler cost contract.  Off, the profiler must be invisible:
     zero samples and tallies, an empty provenance ring, and flush/fence
     counts identical to an uninstrumented run — including when the off
     comes from OBS_DISABLED overriding set_enabled.  On, its persistence
     cost is exactly the provenance protocol: 2 flushes + 1 fence per ring
     entry plus 1 flush + 1 fence per newly persisted site name, nothing
     else.  The two deltas are solved against each other so an extra op
     anywhere in the sampling path breaks the cross-check. *)
  let prof_counts ~prof ~rate =
    Obs.Prof.reset ();
    if prof then begin
      Obs.Prof.set_rate rate;
      Obs.Prof.set_enabled true
    end;
    let heap = Ralloc.create ~name:"prof-smoke" ~size:(16 * mb) () in
    let ev0 =
      match Ralloc.prov heap with
      | Some r -> Obs.Prof.Ring.total_recorded r
      | None -> 0
    in
    let before = Ralloc.stats heap in
    for _ = 1 to 3000 do
      let va = Ralloc.malloc heap 64 in
      Ralloc.free heap va
    done;
    let d = Pmem.Stats.diff (Ralloc.stats heap) before in
    let entries =
      (match Ralloc.prov heap with
      | Some r -> Obs.Prof.Ring.total_recorded r
      | None -> 0)
      - ev0
    in
    let samples = Obs.Prof.samples () in
    let no_tallies = Obs.Prof.stats () = [] in
    Obs.Prof.set_enabled false;
    (d.flushes, d.fences, entries, samples, no_tallies)
  in
  let poff_f, poff_fe, poff_ev, poff_s, poff_nt =
    prof_counts ~prof:false ~rate:4096
  in
  let pon_f, pon_fe, pon_ev, pon_s, _ = prof_counts ~prof:true ~rate:4096 in
  check "profiler off samples nothing" (poff_s = 0 && poff_nt);
  check "profiler off writes no provenance entries" (poff_ev = 0);
  check "profiler on samples the workload" (pon_s > 0 && pon_ev > 0);
  (* entries = sampled allocs + frees of sampled blocks; persists = site
     names newly written to the persistent table.  Solve persists from the
     fence delta, then require the flush delta to agree. *)
  let persists = pon_fe - poff_fe - pon_ev in
  check
    (Printf.sprintf
       "profiler flush cost is 2/entry + 1/site (%d entries, %d sites)"
       pon_ev persists)
    (pon_f - poff_f = (2 * pon_ev) + persists);
  check "profiler site persists are bounded by the interned set"
    (persists >= 0 && persists <= Obs.Prof.site_count ());
  Unix.putenv "OBS_DISABLED" "1";
  let penv_f, penv_fe, penv_ev, penv_s, _ = prof_counts ~prof:true ~rate:4096 in
  check "OBS_DISABLED forces the profiler off" (not (Obs.Prof.on ()));
  check "OBS_DISABLED run samples nothing" (penv_s = 0 && penv_ev = 0);
  check "OBS_DISABLED run adds no flushes or fences"
    (penv_f = poff_f && penv_fe = poff_fe);
  Unix.putenv "OBS_DISABLED" "0";
  Obs.Prof.reset ();
  if !failed then begin
    prerr_endline "perf_smoke: heap profiler violated its cost contract";
    exit 1
  end;
  print_endline
    "perf_smoke: heap profiler is 2F+1F/entry + 1F+1F/site, free when off";

  (* Profiler throughput contract: at the default rate (one sample per
     512 KiB) the per-allocation cost is a budget decrement riding the
     DLS fetch malloc already pays, plus one flat-bitmap probe per free.
     Throughput is measured the way the repo's recorded benchmarks
     measure it — the standard threadtest workload with metrics on
     (BENCH_fig5a.json: "compare future runs with metrics on") — and
     must stay within 5% of the profiler-off run.  Best-of-5 windows on
     both sides squeeze out scheduler noise; a small absolute slack
     absorbs timer granularity. *)
  let tp_param =
    { Workloads.Threadtest.iterations = 100;
      objects_per_iter = 1000;
      object_size = 64 }
  in
  let tp_off, tp_on =
    Obs.set_enabled true;
    let alloc_off = Baselines.Allocators.make "ralloc" ~size:(64 * mb) in
    let alloc_on = Baselines.Allocators.make "ralloc" ~size:(64 * mb) in
    let window alloc prof =
      if prof then begin
        Obs.Prof.set_rate Obs.Prof.default_rate;
        Obs.Prof.set_enabled true
      end;
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      ignore (Workloads.Threadtest.run alloc ~threads:1 tp_param);
      let dt = Unix.gettimeofday () -. t0 in
      Obs.Prof.set_enabled false;
      dt
    in
    (* interleave the off and on windows so clock-frequency and cache
       drift across the measurement hits both sides equally *)
    let best_off = ref infinity and best_on = ref infinity in
    for _ = 1 to 5 do
      let doff = window alloc_off false in
      let don = window alloc_on true in
      if doff < !best_off then best_off := doff;
      if don < !best_on then best_on := don
    done;
    Obs.Prof.reset ();
    Obs.set_enabled false;
    (!best_off, !best_on)
  in
  Printf.printf
    "profiler threadtest best-of-5: off %.4fs, on(default rate) %.4fs \
     (%+.1f%%)\n"
    tp_off tp_on
    ((tp_on -. tp_off) /. tp_off *. 100.);
  check "profiler costs under 5% malloc throughput at the default rate"
    (tp_on <= (tp_off *. 1.05) +. 0.003);
  if !failed then begin
    prerr_endline
      "perf_smoke: heap profiler exceeded its throughput budget at the \
       default sampling rate";
    exit 1
  end;
  print_endline
    "perf_smoke: heap profiler stays within 5% of uninstrumented throughput";

  (* Metrics black-box (Tsdb) cost contract.  The sampler's persistence
     cost is exact and mode-invariant: 4 flushes (one per record line) +
     1 fence per fine tick, plus 4 flushes when a tick closes a mid
     bucket (every 10th) or a coarse bucket (every 60th).  Disabled —
     flag off or OBS_DISABLED — a tick evaluates nothing, writes
     nothing, and returns [||].  Series declaration cost (1 flush +
     1 fence per name) is paid once at sampler creation and excluded
     from the per-tick window below. *)
  let tsdb_counts mode ~record ~ticks =
    Pmem.set_mode mode;
    Obs.Tsdb.set_enabled record;
    let heap = Ralloc.create ~name:"tsdb-smoke" ~size:(16 * mb) () in
    let db =
      match Ralloc.tsdb heap with
      | Some d -> d
      | None -> failwith "tsdb-smoke: heap has no tsdb window"
    in
    let sampler =
      Obs.Tsdb.Sampler.create db
        [ ("smoke.one", fun _ -> 1); ("smoke.two", fun _ -> 2) ]
    in
    let before = Ralloc.stats heap in
    let ticked = ref 0 in
    for _ = 1 to ticks do
      if Array.length (Obs.Tsdb.Sampler.tick sampler) > 0 then incr ticked
    done;
    let d = Pmem.Stats.diff (Ralloc.stats heap) before in
    Obs.Tsdb.set_enabled false;
    (d.flushes, d.fences, !ticked)
  in
  (* 65 ticks: 6 mid closes + 1 coarse close ride along *)
  let ticks = 65 in
  let mid_closes = ticks / 10 and coarse_closes = ticks / 60 in
  let want_f = 4 * (ticks + mid_closes + coarse_closes) in
  let toff_f, toff_fe, toff_n = tsdb_counts Pmem.Pipelined ~record:false ~ticks in
  let ton_f, ton_fe, ton_n = tsdb_counts Pmem.Pipelined ~record:true ~ticks in
  let tson_f, tson_fe, tson_n =
    tsdb_counts Pmem.Synchronous ~record:true ~ticks
  in
  Pmem.set_mode Pmem.Pipelined;
  check "tsdb disabled ticks are inert" (toff_n = 0 && toff_f = 0 && toff_fe = 0);
  check
    (Printf.sprintf "tsdb tick cost is 4 flushes/record (%d records)"
       (ticks + mid_closes + coarse_closes))
    (ton_n = ticks && ton_f = want_f);
  check "tsdb tick cost is 1 fence/tick" (ton_fe = ticks);
  check "tsdb tick counts are mode-invariant"
    (tson_f = ton_f && tson_fe = ton_fe && tson_n = ton_n);
  Unix.putenv "OBS_DISABLED" "1";
  let tenv_f, tenv_fe, tenv_n = tsdb_counts Pmem.Pipelined ~record:true ~ticks in
  check "OBS_DISABLED holds the tsdb sampler off against set_enabled true"
    (not (Obs.Tsdb.enabled ()));
  check "OBS_DISABLED ticks record nothing"
    (tenv_n = 0 && tenv_f = 0 && tenv_fe = 0);
  Unix.putenv "OBS_DISABLED" "0";
  Pmem.set_mode Pmem.Pipelined;
  if !failed then begin
    prerr_endline "perf_smoke: tsdb sampler violated its cost contract";
    exit 1
  end;
  print_endline
    "perf_smoke: tsdb sampler is 4F/record + 1F/tick, mode-invariant, free \
     when off";

  (* Sampler throughput contract: the cost the sampler can impose on the
     serving path is (ticks/second x seconds/tick), so bound the
     per-tick wall time directly — a relative two-window wall-clock
     comparison at a 1% tolerance is below this box's scheduler noise
     floor, but the per-tick bound is deterministic.  Budget: 1% of a
     core at the server's default 1 s cadence allows 10 ms/tick; require
     two orders of magnitude better (100 us/tick, i.e. <=1% even at
     100 Hz), ticking the full standard series set against a live
     allocation workload so the census sources walk a real heap. *)
  let tick_us =
    Obs.set_enabled true;
    Obs.Tsdb.set_enabled true;
    let alloc = Baselines.Allocators.make "ralloc" ~size:(64 * mb) in
    ignore (Workloads.Threadtest.run alloc ~threads:1 tp_param);
    let words = Obs.Tsdb.words_for () in
    let region = Pmem.create ~size_bytes:(words * 8) () in
    let db = Obs.Tsdb.format (Pmem.flight_backend region ~first_word:0 ~words) in
    let sampler = Obs.Tsdb.Sampler.create db (Ralloc.tsdb_global_sources ()) in
    let batch n =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to n do
        ignore (Obs.Tsdb.Sampler.tick sampler)
      done;
      (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6
    in
    ignore (batch 100) (* warm the code paths *);
    let best = ref infinity in
    for _ = 1 to 5 do
      let b = batch 1000 in
      if b < !best then best := b
    done;
    Obs.Tsdb.set_enabled false;
    Obs.set_enabled false;
    !best
  in
  Printf.printf "tsdb tick cost best-of-5: %.1f us/tick\n" tick_us;
  check "tsdb tick costs under 100 us (<=1% of a core even at 100 Hz)"
    (tick_us < 100.);
  if !failed then begin
    prerr_endline
      "perf_smoke: tsdb sampler exceeded its throughput budget";
    exit 1
  end;
  print_endline
    "perf_smoke: tsdb sampler stays within 1% of unsampled throughput"
