(* Mode-invariance smoke: the paper's flush-accounting thesis (abl_flush,
   the Fig. 5 flush/fence columns) must not depend on the persistence cost
   model.  Run a small fixed workload under the pipelined and synchronous
   models for every allocator and fail if the flush or fence counts differ
   by even one — a drift here means the pipeline changed *what* is
   persisted, not just when it is paid for. *)

let mb = 1 lsl 20

let () =
  let p =
    { Workloads.Threadtest.iterations = 2; objects_per_iter = 500; object_size = 64 }
  in
  let counts mode name =
    Pmem.set_mode mode;
    let alloc = Baselines.Allocators.make name ~size:(16 * mb) in
    let before = Alloc_iface.stats alloc in
    ignore (Workloads.Threadtest.run alloc ~threads:1 p);
    let d = Pmem.Stats.diff (Alloc_iface.stats alloc) before in
    (d.flushes, d.fences)
  in
  let failed = ref false in
  List.iter
    (fun name ->
      let pf, pfe = counts Pmem.Pipelined name in
      let sf, sfe = counts Pmem.Synchronous name in
      Printf.printf
        "%-12s pipelined: flushes=%-8d fences=%-8d  sync: flushes=%-8d \
         fences=%-8d%s\n"
        name pf pfe sf sfe
        (if pf <> sf || pfe <> sfe then "  <-- MODE-DEPENDENT" else "");
      if pf <> sf || pfe <> sfe then failed := true)
    Baselines.Allocators.names;
  Pmem.set_mode Pmem.Pipelined;
  if !failed then begin
    prerr_endline
      "perf_smoke: flush/fence counts differ between pmem modes; the \
       flush-accounting tables are no longer mode-invariant";
    exit 1
  end;
  print_endline "perf_smoke: flush/fence counts are mode-invariant"
